//! Partitioned (out-of-core) evaluation of a frozen [`Program`].
//!
//! The resident evaluator (`lasagne-serve`) materializes **every**
//! intermediate of the program over all `N` graph nodes — O(graph) memory.
//! [`RowPlan`] evaluates any subset of output rows while materializing only
//! the rows each instruction actually contributes to them, so a partition
//! sweep peaks at O(partition + halo), and the answer is **bitwise** equal
//! to the corresponding rows of the resident evaluation. Three facts make
//! that possible:
//!
//! * **Row-local kernels.** Almost every inference op computes output row
//!   `r` from row `r` of its dense inputs (element-wise ops, broadcasts,
//!   activations, row-wise log-softmax) or from an explicit row set:
//!   `MatMul` reads row `r` of the left operand (and the whole right
//!   operand — a weight matrix, small), `SpMM` reads the rows of `x` named
//!   by the sparse row's column indices — the halo exchange. A backward
//!   *demand pass* over the program assigns each instruction the exact
//!   sorted row set the requested output rows need.
//! * **Order-preserving slices.** The SpMM block for demanded rows `R` is
//!   `m.slice(R, C)` with `C` the sorted union of those rows' columns: a
//!   monotone column remap that preserves each row's stored-nonzero order,
//!   which with the ascending-from-+0.0 accumulation contract (DESIGN.md
//!   §8) makes the block product bit-identical to rows `R` of the full
//!   product. Dense row gathers are pure copies.
//! * **The density probe.** `Tensor::matmul` picks its zero-skip branch by
//!   probing ≤ 64 strided samples of the **full** left operand, and the
//!   branch changes bits (the skip path never touches `0.0 * b` terms). A
//!   row subset cannot run that probe as-is, so the demand pass always
//!   pulls in the probe-sample rows, the forward pass re-runs the probe on
//!   the reconstructed samples, and the product goes through
//!   [`Tensor::matmul_with_skip`] with the resident verdict.
//!
//! `SumAll`/`SumRows` reductions and `GatAggregate` are not row-local: they
//! need a full non-leaf operand. Plans over programs where such an operand
//! spans the whole graph fail up front with [`PevalError::NotRowLocal`] —
//! callers fall back to resident evaluation (the GAT baseline does; GCN and
//! all four Lasagne aggregators plan cleanly, which the partition
//! equivalence suites assert).

use std::fmt;

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;

use crate::export::{Program, ProgramOp};

/// Why a program cannot be row-locally evaluated, or an evaluation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PevalError {
    /// A `Param` leaf has no entry in the weight table.
    MissingParam(String),
    /// Instruction `node` (`op`) needs a full graph-sized non-leaf operand;
    /// the program must be evaluated resident.
    NotRowLocal { node: usize, op: &'static str },
    /// A requested output row is outside the program's output.
    RowOutOfRange { row: usize, rows: usize },
    /// The partition list passed to [`evaluate_program_partitioned`] does
    /// not cover every output row exactly once.
    BadPartition(String),
}

impl fmt::Display for PevalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PevalError::MissingParam(name) => write!(f, "program references unknown weight {name:?}"),
            PevalError::NotRowLocal { node, op } => write!(
                f,
                "instruction {node} ({op}) needs a full graph-sized operand; \
                 the program is not row-local — evaluate it resident"
            ),
            PevalError::RowOutOfRange { row, rows } => {
                write!(f, "requested output row {row} of {rows}")
            }
            PevalError::BadPartition(msg) => write!(f, "bad partition: {msg}"),
        }
    }
}

impl std::error::Error for PevalError {}

fn op_name(op: &ProgramOp) -> &'static str {
    use ProgramOp::*;
    match op {
        Constant { .. } => "constant",
        Param { .. } => "param",
        MatMul { .. } => "matmul",
        SpMM { .. } => "spmm",
        Add { .. } => "add",
        Sub { .. } => "sub",
        Mul { .. } => "mul",
        Div { .. } => "div",
        Scale { .. } => "scale",
        AddConst { .. } => "add_const",
        Pow { .. } => "pow",
        Exp { .. } => "exp",
        Relu { .. } => "relu",
        LeakyRelu { .. } => "leaky_relu",
        Sigmoid { .. } => "sigmoid",
        Tanh { .. } => "tanh",
        AddRowBroadcast { .. } => "add_row_broadcast",
        AddColBroadcast { .. } => "add_col_broadcast",
        MulColBroadcast { .. } => "mul_col_broadcast",
        MulScalarNode { .. } => "mul_scalar",
        LogSoftmax { .. } => "log_softmax",
        ConcatCols { .. } => "concat_cols",
        SliceCols { .. } => "slice_cols",
        GatherRows { .. } => "gather_rows",
        SumAll { .. } => "sum_all",
        SumRows { .. } => "sum_rows",
        SumCols { .. } => "sum_cols",
        MaxStack { .. } => "max_stack",
        GatAggregate { .. } => "gat_aggregate",
    }
}

/// The rows of the full left operand `Tensor::matmul`'s density probe
/// samples: flat indices `0, step, 2·step, …` with `step = ceil(len/64)`,
/// mapped to row ids. Mirrors `looks_sparse` exactly (including the
/// ceil-rounded stride).
fn probe_rows(rows: usize, cols: usize) -> Vec<usize> {
    const SAMPLES: usize = 64;
    let len = rows * cols;
    if len == 0 {
        return Vec::new();
    }
    let step = len.div_ceil(SAMPLES).max(1);
    let mut out: Vec<usize> = (0..len).step_by(step).map(|f| f / cols).collect();
    out.dedup(); // flat indices ascend, so rows are already sorted
    out
}

/// Re-run the resident density probe from sampled values: `get(f)` must
/// return the full left operand's flat element `f`. Same stride, same
/// `== 0.0` test, same ≥¼-zeros verdict as `Tensor::looks_sparse`.
fn probe_skip(rows: usize, cols: usize, get: impl Fn(usize) -> f32) -> bool {
    const SAMPLES: usize = 64;
    let len = rows * cols;
    if len == 0 {
        return false;
    }
    let step = len.div_ceil(SAMPLES).max(1);
    let (mut zeros, mut total) = (0usize, 0usize);
    let mut f = 0;
    while f < len {
        if get(f) == 0.0 {
            zeros += 1;
        }
        total += 1;
        f += step;
    }
    zeros * 4 >= total
}

/// Positions of each `wanted` row inside the sorted `union` row list.
/// Demand-pass invariant: every row a consumer asks for was propagated into
/// the producer's union, so the lookup cannot miss.
fn positions(union: &[usize], wanted: &[usize]) -> Vec<usize> {
    wanted
        .iter()
        .map(|w| union.binary_search(w).expect("peval: demanded row missing from union"))
        .collect()
}

fn merge_into(demand: &mut Option<Vec<usize>>, rows: impl IntoIterator<Item = usize>) {
    demand.get_or_insert_with(Vec::new).extend(rows);
}

/// A validated row-local evaluation plan for one program against one weight
/// table. Construction performs shape inference and rejects programs whose
/// output rows cannot be computed without materializing a graph-sized
/// intermediate; [`RowPlan::eval_rows`] then evaluates any output row
/// subset, bitwise equal to the resident path. The plan is stateless after
/// construction (`eval_rows` takes `&self`), so callers can cache one plan
/// and sweep partitions — or threads — over it.
pub struct RowPlan<'a> {
    ops: &'a [ProgramOp],
    sparse: Vec<&'a Csr>,
    weights: &'a [(String, Tensor)],
    output: usize,
    shapes: Vec<(usize, usize)>,
}

impl<'a> RowPlan<'a> {
    /// Plan `program` (convenience over [`RowPlan::from_parts`]).
    pub fn new(
        program: &'a Program,
        weights: &'a [(String, Tensor)],
    ) -> Result<RowPlan<'a>, PevalError> {
        let sparse: Vec<&Csr> = program.sparse.iter().map(|m| &**m).collect();
        RowPlan::from_parts(&program.ops, sparse, weights, program.output)
    }

    /// Plan a raw op list (the form `lasagne-serve` holds: no `Rc`s, so the
    /// plan stays `Send`-compatible).
    pub fn from_parts(
        ops: &'a [ProgramOp],
        sparse: Vec<&'a Csr>,
        weights: &'a [(String, Tensor)],
        output: usize,
    ) -> Result<RowPlan<'a>, PevalError> {
        let lookup = |name: &str| -> Result<&Tensor, PevalError> {
            weights
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t)
                .ok_or_else(|| PevalError::MissingParam(name.to_string()))
        };
        // Shape inference (exact: mirrors each kernel's output shape).
        let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(ops.len());
        for op in ops {
            let s = |i: &usize| shapes[*i];
            let shape = match op {
                ProgramOp::Constant { value } => value.shape(),
                ProgramOp::Param { name } => lookup(name)?.shape(),
                ProgramOp::MatMul { a, b } => (s(a).0, s(b).1),
                ProgramOp::SpMM { m, x } => (sparse[*m].shape().0, s(x).1),
                ProgramOp::Add { a, .. }
                | ProgramOp::Sub { a, .. }
                | ProgramOp::Mul { a, .. }
                | ProgramOp::Div { a, .. } => s(a),
                ProgramOp::Scale { x, .. }
                | ProgramOp::AddConst { x, .. }
                | ProgramOp::Pow { x, .. }
                | ProgramOp::Exp { x }
                | ProgramOp::Relu { x }
                | ProgramOp::LeakyRelu { x, .. }
                | ProgramOp::Sigmoid { x }
                | ProgramOp::Tanh { x }
                | ProgramOp::LogSoftmax { x }
                | ProgramOp::AddRowBroadcast { x, .. }
                | ProgramOp::AddColBroadcast { x, .. }
                | ProgramOp::MulColBroadcast { x, .. }
                | ProgramOp::MulScalarNode { x, .. } => s(x),
                ProgramOp::ConcatCols { parts } => {
                    (s(&parts[0]).0, parts.iter().map(|p| s(p).1).sum())
                }
                ProgramOp::SliceCols { x, lo, hi } => (s(x).0, hi - lo),
                ProgramOp::GatherRows { x, idx } => (idx.len(), s(x).1),
                ProgramOp::SumAll { .. } => (1, 1),
                ProgramOp::SumRows { x } => (1, s(x).1),
                ProgramOp::SumCols { x } => (s(x).0, 1),
                ProgramOp::MaxStack { parts } => s(&parts[0]),
                ProgramOp::GatAggregate { z, .. } => s(z),
            };
            shapes.push(shape);
        }
        let n = shapes[output].0;

        // Which instructions may be fully materialized inside an O(partition)
        // budget: leaves (resident in the program/weight table anyway), and
        // non-leaves that are not graph-row-sized and whose inputs are all
        // materializable themselves.
        let mut full_ok = vec![false; ops.len()];
        for (i, op) in ops.iter().enumerate() {
            full_ok[i] = match op {
                ProgramOp::Constant { .. } | ProgramOp::Param { .. } => true,
                _ => shapes[i].0 != n && op.inputs().iter().all(|&j| full_ok[j]),
            };
        }

        // Validate: every reachable instruction's full-demand operands must
        // be materializable.
        let mut reachable = vec![false; ops.len()];
        let mut stack = vec![output];
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut reachable[i], true) {
                continue;
            }
            stack.extend(ops[i].inputs());
        }
        for (i, op) in ops.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let full_operands: Vec<usize> = match op {
                ProgramOp::MatMul { b, .. } => vec![*b],
                ProgramOp::AddRowBroadcast { b, .. } => vec![*b],
                ProgramOp::MulScalarNode { s, .. } => vec![*s],
                // Reductions and attention read their operands whole.
                ProgramOp::SumAll { x } | ProgramOp::SumRows { x } => vec![*x],
                ProgramOp::GatAggregate { z, ssrc, sdst, .. } => vec![*z, *ssrc, *sdst],
                _ => Vec::new(),
            };
            for j in full_operands {
                if !full_ok[j] {
                    return Err(PevalError::NotRowLocal { node: i, op: op_name(op) });
                }
            }
        }
        Ok(RowPlan { ops, sparse, weights, output, shapes })
    }

    /// Output shape `(rows, cols)` of the planned program.
    pub fn output_shape(&self) -> (usize, usize) {
        self.shapes[self.output]
    }

    fn lookup(&self, name: &str) -> Result<&Tensor, PevalError> {
        self.weights
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
            .ok_or_else(|| PevalError::MissingParam(name.to_string()))
    }

    /// Fully materialize instruction `i` (plan-validated small) and its
    /// non-leaf dependencies into `full_vals`, with the exact resident
    /// kernels — same ops, same internal probes, same bits.
    fn eval_full(&self, i: usize, full_vals: &mut [Option<Tensor>]) -> Result<(), PevalError> {
        if full_vals[i].is_some() {
            return Ok(());
        }
        for j in self.ops[i].inputs() {
            if !matches!(self.ops[j], ProgramOp::Constant { .. } | ProgramOp::Param { .. }) {
                self.eval_full(j, full_vals)?;
            }
        }
        // Leaves resolve straight from the program/weight table; everything
        // else from the memo just filled.
        macro_rules! v {
            ($j:expr) => {
                match &self.ops[$j] {
                    ProgramOp::Constant { value } => value,
                    ProgramOp::Param { name } => self.lookup(name)?,
                    _ => full_vals[$j].as_ref().expect("eval_full: input ready"),
                }
            };
        }
        let out = match &self.ops[i] {
            ProgramOp::Constant { value } => value.clone(),
            ProgramOp::Param { name } => self.lookup(name)?.clone(),
            ProgramOp::MatMul { a, b } => v!(*a).matmul(v!(*b)),
            ProgramOp::SpMM { m, x } => self.sparse[*m].spmm(v!(*x)),
            ProgramOp::Add { a, b } => v!(*a).add(v!(*b)),
            ProgramOp::Sub { a, b } => v!(*a).sub(v!(*b)),
            ProgramOp::Mul { a, b } => v!(*a).mul(v!(*b)),
            ProgramOp::Div { a, b } => v!(*a).div(v!(*b)),
            ProgramOp::Scale { x, alpha } => v!(*x).scale(*alpha),
            ProgramOp::AddConst { x, c } => v!(*x).add_scalar(*c),
            ProgramOp::Pow { x, p, eps } => {
                let (p, eps) = (*p, *eps);
                v!(*x).map(|t| (t + eps).powf(p))
            }
            ProgramOp::Exp { x } => v!(*x).map(f32::exp),
            ProgramOp::Relu { x } => v!(*x).relu(),
            ProgramOp::LeakyRelu { x, slope } => v!(*x).leaky_relu(*slope),
            ProgramOp::Sigmoid { x } => v!(*x).sigmoid(),
            ProgramOp::Tanh { x } => v!(*x).tanh(),
            ProgramOp::AddRowBroadcast { x, b } => v!(*x).add_row_broadcast(v!(*b)),
            ProgramOp::AddColBroadcast { x, c } => v!(*x).add_col_broadcast(v!(*c)),
            ProgramOp::MulColBroadcast { x, c } => v!(*x).mul_col_broadcast(v!(*c)),
            ProgramOp::MulScalarNode { x, s } => v!(*x).scale(v!(*s).get(0, 0)),
            ProgramOp::LogSoftmax { x } => v!(*x).log_softmax_rows(),
            ProgramOp::ConcatCols { parts } => {
                let mut tensors: Vec<&Tensor> = Vec::with_capacity(parts.len());
                for &p in parts {
                    tensors.push(v!(p));
                }
                Tensor::concat_cols(&tensors)
            }
            ProgramOp::SliceCols { x, lo, hi } => v!(*x).slice_cols(*lo, *hi),
            ProgramOp::GatherRows { x, idx } => v!(*x).gather_rows(idx),
            ProgramOp::SumAll { x } => Tensor::full(1, 1, v!(*x).sum()),
            ProgramOp::SumRows { x } => v!(*x).sum_rows(),
            ProgramOp::SumCols { x } => v!(*x).sum_cols(),
            ProgramOp::MaxStack { parts } => {
                let mut acc = v!(parts[0]).clone();
                for &p in &parts[1..] {
                    let pv = v!(p);
                    for (best, cand) in acc.as_mut_slice().iter_mut().zip(pv.as_slice()) {
                        if *cand > *best {
                            *best = *cand;
                        }
                    }
                }
                acc
            }
            // Plan validation rejects GatAggregate with graph-sized inputs,
            // and a small one never occurs (attention spans the graph); if a
            // program ever carries one, the plan already errored.
            ProgramOp::GatAggregate { .. } => {
                return Err(PevalError::NotRowLocal { node: i, op: "gat_aggregate" })
            }
        };
        full_vals[i] = Some(out);
        Ok(())
    }

    /// Evaluate the program restricted to output rows `rows` (any order,
    /// repeats allowed). Returns a `rows.len() × cols` tensor whose row `r`
    /// is bitwise equal to row `rows[r]` of the resident evaluation.
    pub fn eval_rows(&self, rows: &[usize]) -> Result<Tensor, PevalError> {
        let (out_rows, out_cols) = self.shapes[self.output];
        for &r in rows {
            if r >= out_rows {
                return Err(PevalError::RowOutOfRange { row: r, rows: out_rows });
            }
        }
        if rows.is_empty() {
            return Ok(Tensor::zeros(0, out_cols));
        }

        // ---- backward demand pass -------------------------------------
        // demand[i]: sorted union of the rows of instruction i any consumer
        // needs; need_full[i]: some consumer reads i whole (weights, biases,
        // 1×1 scalars — plan-validated small).
        let mut demand: Vec<Option<Vec<usize>>> = vec![None; self.ops.len()];
        let mut need_full = vec![false; self.ops.len()];
        // spmm_cols[i]: for an SpMM, the sorted ghost-column set its demanded
        // rows touch — recorded here so the forward pass slices identically.
        let mut spmm_cols: Vec<Option<Vec<usize>>> = vec![None; self.ops.len()];
        {
            let mut sorted = rows.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            demand[self.output] = Some(sorted);
        }
        let mark_full = |need_full: &mut Vec<bool>, j: usize, ops: &[ProgramOp]| {
            // Leaves are served straight from the program/weight table.
            if !matches!(ops[j], ProgramOp::Constant { .. } | ProgramOp::Param { .. }) {
                need_full[j] = true;
            }
        };
        for i in (0..self.ops.len()).rev() {
            let Some(d) = demand[i].take() else { continue };
            let mut d = d;
            d.sort_unstable();
            d.dedup();
            match &self.ops[i] {
                ProgramOp::Constant { .. } | ProgramOp::Param { .. } => {}
                ProgramOp::MatMul { a, b } => {
                    let (ar, ac) = self.shapes[*a];
                    merge_into(&mut demand[*a], d.iter().copied());
                    merge_into(&mut demand[*a], probe_rows(ar, ac));
                    mark_full(&mut need_full, *b, self.ops);
                }
                ProgramOp::SpMM { m, x } => {
                    let mut cols: Vec<usize> = Vec::new();
                    for &r in &d {
                        cols.extend(self.sparse[*m].row_indices(r).iter().map(|&c| c as usize));
                    }
                    cols.sort_unstable();
                    cols.dedup();
                    merge_into(&mut demand[*x], cols.iter().copied());
                    spmm_cols[i] = Some(cols);
                }
                ProgramOp::Add { a, b }
                | ProgramOp::Sub { a, b }
                | ProgramOp::Mul { a, b }
                | ProgramOp::Div { a, b } => {
                    merge_into(&mut demand[*a], d.iter().copied());
                    merge_into(&mut demand[*b], d.iter().copied());
                }
                ProgramOp::Scale { x, .. }
                | ProgramOp::AddConst { x, .. }
                | ProgramOp::Pow { x, .. }
                | ProgramOp::Exp { x }
                | ProgramOp::Relu { x }
                | ProgramOp::LeakyRelu { x, .. }
                | ProgramOp::Sigmoid { x }
                | ProgramOp::Tanh { x }
                | ProgramOp::LogSoftmax { x }
                | ProgramOp::SliceCols { x, .. }
                | ProgramOp::SumCols { x } => {
                    merge_into(&mut demand[*x], d.iter().copied());
                }
                ProgramOp::AddRowBroadcast { x, b } => {
                    merge_into(&mut demand[*x], d.iter().copied());
                    mark_full(&mut need_full, *b, self.ops);
                }
                ProgramOp::AddColBroadcast { x, c } | ProgramOp::MulColBroadcast { x, c } => {
                    merge_into(&mut demand[*x], d.iter().copied());
                    merge_into(&mut demand[*c], d.iter().copied());
                }
                ProgramOp::MulScalarNode { x, s } => {
                    merge_into(&mut demand[*x], d.iter().copied());
                    mark_full(&mut need_full, *s, self.ops);
                }
                ProgramOp::ConcatCols { parts } | ProgramOp::MaxStack { parts } => {
                    for &p in parts {
                        merge_into(&mut demand[p], d.iter().copied());
                    }
                }
                ProgramOp::GatherRows { x, idx } => {
                    merge_into(&mut demand[*x], d.iter().map(|&r| idx[r]));
                }
                // Served whole from the (plan-validated small) full value.
                ProgramOp::SumAll { .. } | ProgramOp::SumRows { .. } => {
                    need_full[i] = true;
                }
                ProgramOp::GatAggregate { .. } => {
                    return Err(PevalError::NotRowLocal { node: i, op: "gat_aggregate" })
                }
            }
            demand[i] = Some(d);
        }
        // Full-demand closure: the SumAll/SumRows arms above mark their own
        // op, whose *inputs* eval_full materializes recursively.

        // ---- forward pass ---------------------------------------------
        let mut full_vals: Vec<Option<Tensor>> = vec![None; self.ops.len()];
        let mut row_vals: Vec<Option<Tensor>> = vec![None; self.ops.len()];
        for i in 0..self.ops.len() {
            if need_full[i] {
                self.eval_full(i, &mut full_vals)?;
            }
            let Some(d) = demand[i].clone() else { continue };
            // Rows `wanted` of instruction `j`, gathered (a pure bitwise
            // copy) from wherever they live: the leaf itself, the row-subset
            // value, or the full value.
            let take = |j: usize, wanted: &[usize]| -> Result<Tensor, PevalError> {
                match &self.ops[j] {
                    ProgramOp::Constant { value } => Ok(value.gather_rows(wanted)),
                    ProgramOp::Param { name } => Ok(self.lookup(name)?.gather_rows(wanted)),
                    _ => {
                        if let Some(rv) = &row_vals[j] {
                            let union = demand[j].as_ref().expect("row value has a demand set");
                            Ok(rv.gather_rows(&positions(union, wanted)))
                        } else {
                            let fv = full_vals[j].as_ref().expect("peval: operand unevaluated");
                            Ok(fv.gather_rows(wanted))
                        }
                    }
                }
            };
            let full = |j: usize| -> Result<&Tensor, PevalError> {
                match &self.ops[j] {
                    ProgramOp::Constant { value } => Ok(value),
                    ProgramOp::Param { name } => self.lookup(name),
                    _ => Ok(full_vals[j].as_ref().expect("peval: full operand unevaluated")),
                }
            };
            let out = match &self.ops[i] {
                // Leaf rows are gathered lazily by consumers; no value to
                // store (and nothing to compute).
                ProgramOp::Constant { .. } | ProgramOp::Param { .. } => continue,
                ProgramOp::MatMul { a, b } => {
                    let (ar, ac) = self.shapes[*a];
                    // Reconstruct the resident probe from the sampled rows
                    // (always part of a's demand), then take the demanded
                    // rows through the explicit-skip seed kernel.
                    let prows = probe_rows(ar, ac);
                    let samples = take(*a, &prows)?;
                    let skip = probe_skip(ar, ac, |f| {
                        let (r, c) = (f / ac, f % ac);
                        let local = prows.binary_search(&r).expect("probe row sampled");
                        samples.get(local, c)
                    });
                    take(*a, &d)?.matmul_with_skip(full(*b)?, skip)
                }
                ProgramOp::SpMM { m, x } => {
                    let cols = spmm_cols[i].as_ref().expect("spmm demand recorded");
                    let block = self.sparse[*m].slice(&d, cols);
                    block.spmm(&take(*x, cols)?)
                }
                ProgramOp::Add { a, b } => take(*a, &d)?.add(&take(*b, &d)?),
                ProgramOp::Sub { a, b } => take(*a, &d)?.sub(&take(*b, &d)?),
                ProgramOp::Mul { a, b } => take(*a, &d)?.mul(&take(*b, &d)?),
                ProgramOp::Div { a, b } => take(*a, &d)?.div(&take(*b, &d)?),
                ProgramOp::Scale { x, alpha } => take(*x, &d)?.scale(*alpha),
                ProgramOp::AddConst { x, c } => take(*x, &d)?.add_scalar(*c),
                ProgramOp::Pow { x, p, eps } => {
                    let (p, eps) = (*p, *eps);
                    take(*x, &d)?.map(|t| (t + eps).powf(p))
                }
                ProgramOp::Exp { x } => take(*x, &d)?.map(f32::exp),
                ProgramOp::Relu { x } => take(*x, &d)?.relu(),
                ProgramOp::LeakyRelu { x, slope } => take(*x, &d)?.leaky_relu(*slope),
                ProgramOp::Sigmoid { x } => take(*x, &d)?.sigmoid(),
                ProgramOp::Tanh { x } => take(*x, &d)?.tanh(),
                ProgramOp::AddRowBroadcast { x, b } => {
                    take(*x, &d)?.add_row_broadcast(full(*b)?)
                }
                ProgramOp::AddColBroadcast { x, c } => {
                    take(*x, &d)?.add_col_broadcast(&take(*c, &d)?)
                }
                ProgramOp::MulColBroadcast { x, c } => {
                    take(*x, &d)?.mul_col_broadcast(&take(*c, &d)?)
                }
                ProgramOp::MulScalarNode { x, s } => take(*x, &d)?.scale(full(*s)?.get(0, 0)),
                ProgramOp::LogSoftmax { x } => take(*x, &d)?.log_softmax_rows(),
                ProgramOp::ConcatCols { parts } => {
                    let mut tensors = Vec::with_capacity(parts.len());
                    for &p in parts {
                        tensors.push(take(p, &d)?);
                    }
                    let refs: Vec<&Tensor> = tensors.iter().collect();
                    Tensor::concat_cols(&refs)
                }
                ProgramOp::SliceCols { x, lo, hi } => take(*x, &d)?.slice_cols(*lo, *hi),
                ProgramOp::GatherRows { x, idx } => {
                    let wanted: Vec<usize> = d.iter().map(|&r| idx[r]).collect();
                    take(*x, &wanted)?
                }
                ProgramOp::SumCols { x } => take(*x, &d)?.sum_cols(),
                // Whole value materialized above; its demanded rows are a
                // gather from it.
                ProgramOp::SumAll { .. } | ProgramOp::SumRows { .. } => {
                    full_vals[i].as_ref().expect("reduction evaluated full").gather_rows(&d)
                }
                ProgramOp::MaxStack { parts } => {
                    let mut acc = take(parts[0], &d)?;
                    for &p in &parts[1..] {
                        let pv = take(p, &d)?;
                        for (best, cand) in acc.as_mut_slice().iter_mut().zip(pv.as_slice()) {
                            if *cand > *best {
                                *best = *cand;
                            }
                        }
                    }
                    acc
                }
                ProgramOp::GatAggregate { .. } => {
                    return Err(PevalError::NotRowLocal { node: i, op: "gat_aggregate" })
                }
            };
            row_vals[i] = Some(out);
        }

        // Map the caller's row order onto the sorted union.
        let union = demand[self.output].as_ref().expect("output demanded");
        let value = row_vals[self.output].as_ref().expect("output evaluated");
        Ok(value.gather_rows(&positions(union, rows)))
    }
}

/// Evaluate `program` over a full partition sweep: each part's rows are
/// computed with [`RowPlan::eval_rows`] — peak additional memory
/// O(largest partition + halo) — and scattered into the `N × cols` output,
/// which is bitwise equal to the resident evaluation. `parts` must cover
/// every output row exactly once (the `partition_bfs` contract).
pub fn evaluate_program_partitioned(
    program: &Program,
    weights: &[(String, Tensor)],
    parts: &[Vec<usize>],
) -> Result<Tensor, PevalError> {
    let plan = RowPlan::new(program, weights)?;
    eval_partitions(&plan, parts)
}

/// The sweep behind [`evaluate_program_partitioned`], reusable with a
/// caller-built [`RowPlan`].
pub fn eval_partitions(plan: &RowPlan<'_>, parts: &[Vec<usize>]) -> Result<Tensor, PevalError> {
    let (n, cols) = plan.output_shape();
    let mut covered = vec![false; n];
    for part in parts {
        for &r in part {
            if r >= n {
                return Err(PevalError::BadPartition(format!("row {r} outside 0..{n}")));
            }
            if std::mem::replace(&mut covered[r], true) {
                return Err(PevalError::BadPartition(format!("row {r} in two parts")));
            }
        }
    }
    if let Some(missing) = covered.iter().position(|&c| !c) {
        return Err(PevalError::BadPartition(format!("row {missing} in no part")));
    }
    let mut out = Tensor::zeros(n, cols);
    for part in parts {
        let rows = plan.eval_rows(part)?;
        for (local, &r) in part.iter().enumerate() {
            out.as_mut_slice()[r * cols..(r + 1) * cols].copy_from_slice(rows.row(local));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParamStore, Tape};
    use lasagne_tensor::TensorRng;
    use std::rc::Rc;

    /// A GCN-ish program: relu(Â·(X·W) + b) · W2 → log_softmax, built
    /// straight on a tape so the test owns every shape.
    fn toy_program(n: usize, seed: u64) -> (Program, Vec<(String, Tensor)>) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w = store.add("w", rng.glorot_uniform(6, 4));
        let b = store.add("b", rng.uniform_tensor(1, 4, -0.1, 0.1));
        let w2 = store.add("w2", rng.glorot_uniform(4, 3));
        // A ring adjacency normalized-ish (just weights, structure matters).
        let coo: Vec<(u32, u32, f32)> = (0..n as u32)
            .flat_map(|i| {
                let n = n as u32;
                [(i, i, 0.5f32), (i, (i + 1) % n, 0.25), (i, (i + n - 1) % n, 0.25)]
            })
            .collect();
        let a = Rc::new(Csr::from_coo(n, n, &coo));
        let x = rng.uniform_tensor(n, 6, -1.0, 1.0);

        let mut tape = Tape::new();
        let xn = tape.constant(x);
        let wn = tape.param(w, &store);
        let bn = tape.param(b, &store);
        let w2n = tape.param(w2, &store);
        let xw = tape.matmul(xn, wn);
        let prop = tape.spmm(Rc::clone(&a), xw);
        let biased = tape.add_row_broadcast(prop, bn);
        let act = tape.relu(biased);
        let logits = tape.matmul(act, w2n);
        let out = tape.log_softmax(logits);
        let program = tape.export_program(&store, out).unwrap();
        let weights: Vec<(String, Tensor)> = (0..store.len())
            .map(|i| {
                let id = crate::ParamId::from_index(i);
                (store.name(id).to_string(), store.value(id).clone())
            })
            .collect();
        (program, weights)
    }

    #[test]
    fn row_subsets_match_resident_bitwise() {
        let (program, weights) = toy_program(30, 1);
        // Resident reference via the plan itself at k=1 plus a tape replay
        // is circular; instead evaluate all rows in one go (which exercises
        // the same full-probe path as resident) and compare subsets.
        let plan = RowPlan::new(&program, &weights).unwrap();
        let all: Vec<usize> = (0..30).collect();
        let resident = plan.eval_rows(&all).unwrap();
        for rows in [vec![0usize], vec![7, 3, 29], (10..20).collect::<Vec<_>>()] {
            let got = plan.eval_rows(&rows).unwrap();
            for (local, &r) in rows.iter().enumerate() {
                let gb: Vec<u32> = got.row(local).iter().map(|v| v.to_bits()).collect();
                let wb: Vec<u32> = resident.row(r).iter().map(|v| v.to_bits()).collect();
                assert_eq!(gb, wb, "row {r}");
            }
        }
    }

    #[test]
    fn partition_sweep_matches_and_validates_cover() {
        let (program, weights) = toy_program(24, 2);
        let plan = RowPlan::new(&program, &weights).unwrap();
        let all: Vec<usize> = (0..24).collect();
        let resident = plan.eval_rows(&all).unwrap();
        let parts: Vec<Vec<usize>> = vec![(0..8).collect(), (8..16).collect(), (16..24).collect()];
        let swept = evaluate_program_partitioned(&program, &weights, &parts).unwrap();
        let gb: Vec<u32> = swept.as_slice().iter().map(|v| v.to_bits()).collect();
        let wb: Vec<u32> = resident.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(gb, wb);
        // Bad covers are typed.
        let overlapping = vec![(0..9).collect::<Vec<_>>(), (8..24).collect()];
        assert!(matches!(
            evaluate_program_partitioned(&program, &weights, &overlapping),
            Err(PevalError::BadPartition(_))
        ));
        let missing = vec![(0..8).collect::<Vec<_>>(), (9..24).collect()];
        assert!(matches!(
            evaluate_program_partitioned(&program, &weights, &missing),
            Err(PevalError::BadPartition(_))
        ));
    }

    #[test]
    fn missing_weight_and_bad_row_are_typed() {
        let (program, weights) = toy_program(10, 3);
        assert!(matches!(
            RowPlan::new(&program, &weights[1..]),
            Err(PevalError::MissingParam(_))
        ));
        let plan = RowPlan::new(&program, &weights).unwrap();
        assert_eq!(
            plan.eval_rows(&[10]).unwrap_err(),
            PevalError::RowOutOfRange { row: 10, rows: 10 }
        );
    }

    #[test]
    fn graph_sized_reduction_is_rejected_up_front() {
        let mut rng = TensorRng::seed_from_u64(4);
        let store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.constant(rng.uniform_tensor(12, 3, -1.0, 1.0));
        // A reduction over a resident *leaf* is row-local (the leaf lives in
        // the program anyway); over a graph-sized non-leaf it is not.
        let h = tape.relu(x);
        let s = tape.sum_all(h);
        let scaled = tape.mul_scalar_node(x, s);
        let program = tape.export_program(&store, scaled).unwrap();
        assert!(matches!(
            RowPlan::new(&program, &[]),
            Err(PevalError::NotRowLocal { .. })
        ));
    }
}
