//! Training utilities on top of the optimizers: global-norm gradient
//! clipping and learning-rate schedules.

use crate::{Optimizer, ParamId, ParamStore};

/// Clip the *global* gradient norm across every parameter to `max_norm`
/// (the `torch.nn.utils.clip_grad_norm_` semantics). Returns the norm
/// before clipping. No-op (returning the norm) when already within bounds.
pub fn clip_grad_norm(store: &mut ParamStore, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
    let norm = store.grad_global_norm();
    if norm > max_norm {
        let scale = max_norm / norm;
        for i in 0..store.len() {
            store.grad_mut(ParamId::from_index(i)).scale_assign(scale);
        }
    }
    norm
}

/// A learning-rate schedule: maps the epoch index to a multiplier of the
/// base rate.
pub trait LrSchedule {
    /// Multiplier applied to the base learning rate at `epoch`.
    fn factor(&self, epoch: usize) -> f32;

    /// Apply the schedule to an optimizer (call once per epoch).
    fn apply(&self, opt: &mut dyn Optimizer, base_lr: f32, epoch: usize) {
        opt.set_learning_rate(base_lr * self.factor(epoch));
    }
}

/// Constant rate (the paper's setting — kept for explicitness).
pub struct ConstantLr;

impl LrSchedule for ConstantLr {
    fn factor(&self, _epoch: usize) -> f32 {
        1.0
    }
}

/// Multiply the rate by `gamma` every `step` epochs.
pub struct StepDecay {
    /// Epochs between decays.
    pub step: usize,
    /// Multiplicative decay factor per step.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, epoch: usize) -> f32 {
        self.gamma.powi((epoch / self.step.max(1)) as i32)
    }
}

/// Linear warmup over `warmup` epochs, then constant.
pub struct LinearWarmup {
    /// Warmup length in epochs.
    pub warmup: usize,
}

impl LrSchedule for LinearWarmup {
    fn factor(&self, epoch: usize) -> f32 {
        if self.warmup == 0 || epoch >= self.warmup {
            1.0
        } else {
            (epoch + 1) as f32 / self.warmup as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;
    use lasagne_tensor::Tensor;

    #[test]
    fn clipping_rescales_to_max_norm() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(1, 2));
        store.accumulate_grad(a, &Tensor::from_rows(&[&[3.0, 4.0]])); // norm 5
        let before = clip_grad_norm(&mut store, 1.0);
        assert!((before - 5.0).abs() < 1e-5);
        let g = store.grad(a);
        let after = (g.get(0, 0).powi(2) + g.get(0, 1).powi(2)).sqrt();
        assert!((after - 1.0).abs() < 1e-5, "clipped norm {after}");
        // Direction preserved.
        assert!((g.get(0, 1) / g.get(0, 0) - 4.0 / 3.0).abs() < 1e-4);
    }

    #[test]
    fn clipping_is_noop_within_bounds() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(1, 2));
        store.accumulate_grad(a, &Tensor::from_rows(&[&[0.3, 0.4]]));
        let norm = clip_grad_norm(&mut store, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(store.grad(a), &Tensor::from_rows(&[&[0.3, 0.4]]));
    }

    #[test]
    fn clipping_spans_multiple_params() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::zeros(1, 1));
        let b = store.add("b", Tensor::zeros(1, 1));
        store.accumulate_grad(a, &Tensor::full(1, 1, 3.0));
        store.accumulate_grad(b, &Tensor::full(1, 1, 4.0));
        clip_grad_norm(&mut store, 2.5); // half of the global norm 5
        assert!((store.grad(a).get(0, 0) - 1.5).abs() < 1e-5);
        assert!((store.grad(b).get(0, 0) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay { step: 10, gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn warmup_ramps_then_flattens() {
        let s = LinearWarmup { warmup: 4 };
        assert!((s.factor(0) - 0.25).abs() < 1e-6);
        assert!((s.factor(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.factor(100), 1.0);
    }

    #[test]
    fn schedules_drive_optimizers() {
        let mut opt = Sgd::new(0.1, 0.0);
        StepDecay { step: 5, gamma: 0.1 }.apply(&mut opt, 0.1, 12);
        assert!((opt.learning_rate() - 0.001).abs() < 1e-7);
        ConstantLr.apply(&mut opt, 0.1, 12);
        assert_eq!(opt.learning_rate(), 0.1);
    }
}
