//! Central-difference gradient checking.
//!
//! Every op in this crate is validated against numerical derivatives (see
//! `tests/gradcheck.rs`). The checker rebuilds the forward pass via a
//! deterministic closure — any stochastic structure (dropout masks,
//! Bernoulli gates) must be fixed by the closure for the check to be
//! meaningful.

use crate::{ParamId, ParamStore, Tape};

/// Outcome of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute error between analytic and numeric gradient.
    pub max_abs_err: f32,
    /// Largest relative error (|a−n| / max(1, |a|, |n|)).
    pub max_rel_err: f32,
    /// Number of coordinates checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// True when both error measures are within `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compare analytic gradients against central differences.
///
/// `forward` must build the loss (a `1×1` node) from scratch given the tape
/// and the current store, deterministically. All parameters in `store` are
/// perturbed coordinate by coordinate (cap the cost by keeping test tensors
/// small).
pub fn grad_check(
    store: &mut ParamStore,
    eps: f32,
    mut forward: impl FnMut(&mut Tape, &ParamStore) -> crate::NodeId,
) -> GradCheckReport {
    grad_check_owner(store, |s| s, |_| false, eps, |s, tape| forward(tape, s))
}

/// [`grad_check`] generalized to an *owner* of a `ParamStore` — a model
/// whose `forward` needs `&self` while the checker perturbs parameters
/// through `&mut self`. Plain [`grad_check`] cannot express that: the store
/// borrow and the model borrow collide.
///
/// `store_of` projects the owner onto its store; `skip` drops whole
/// parameters by name from the sweep — for parameters whose analytic
/// gradient *intentionally* differs from the numeric one (e.g. a
/// stop-gradient path like the stochastic aggregator's row-max
/// stabilizer). `forward` must be deterministic given the owner's current
/// parameter values (reseed any RNG it consumes per call).
pub fn grad_check_owner<M: ?Sized>(
    owner: &mut M,
    store_of: impl Fn(&mut M) -> &mut ParamStore,
    skip: impl Fn(&str) -> bool,
    eps: f32,
    mut forward: impl FnMut(&M, &mut Tape) -> crate::NodeId,
) -> GradCheckReport {
    // Analytic pass.
    store_of(owner).zero_grads();
    let mut tape = Tape::new();
    let loss = forward(owner, &mut tape);
    tape.backward(loss, store_of(owner));
    let (n_params, analytic, skipped) = {
        let store = store_of(owner);
        let n = store.len();
        let analytic: Vec<Vec<f32>> = (0..n)
            .map(|i| store.grad(ParamId(i)).as_slice().to_vec())
            .collect();
        let skipped: Vec<bool> = (0..n).map(|i| skip(store.name(ParamId(i)))).collect();
        (n, analytic, skipped)
    };

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        checked: 0,
    };

    for p in 0..n_params {
        if skipped[p] {
            continue;
        }
        let id = ParamId(p);
        let n = store_of(owner).value(id).len();
        for k in 0..n {
            let orig = store_of(owner).value(id).as_slice()[k];

            store_of(owner).value_mut(id).as_mut_slice()[k] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = forward(owner, &mut t1);
            let f_plus = t1.value(l1).get(0, 0);

            store_of(owner).value_mut(id).as_mut_slice()[k] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = forward(owner, &mut t2);
            let f_minus = t2.value(l2).get(0, 0);

            store_of(owner).value_mut(id).as_mut_slice()[k] = orig;

            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let a = analytic[p][k];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
            report.checked += 1;
        }
    }
    report
}
