//! Reverse sweep: walk the tape from the loss back to the leaves, applying
//! each op's vector-Jacobian product and scattering parameter gradients into
//! the [`ParamStore`].

use lasagne_tensor::Tensor;

use crate::tape::{NodeId, Op, Tape};
use crate::ParamStore;

impl Tape {
    /// Backpropagate from `loss` (must be a `1×1` node) and accumulate
    /// parameter gradients into `store`. Gradient buffers are *not* zeroed
    /// here — call [`ParamStore::zero_grads`] before the forward pass (this
    /// allows gradient accumulation across micro-batches).
    pub fn backward(&self, loss: NodeId, store: &mut ParamStore) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1x1 scalar node"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::ones(1, 1));

        for id in (0..=loss.0).rev() {
            if !self.nodes[id].needs_grad {
                grads[id] = None;
                continue;
            }
            let Some(g) = grads[id].take() else { continue };
            self.backprop_node(id, &g, &mut grads, store);
        }
    }

    /// Accumulate `delta` into the pending gradient of `target` (skipping
    /// nodes that don't need gradients).
    fn acc(&self, grads: &mut [Option<Tensor>], target: NodeId, delta: Tensor) {
        if !self.nodes[target.0].needs_grad {
            return;
        }
        match &mut grads[target.0] {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn backprop_node(
        &self,
        id: usize,
        g: &Tensor,
        grads: &mut [Option<Tensor>],
        store: &mut ParamStore,
    ) {
        let out = &self.nodes[id].value;
        match &self.nodes[id].op {
            Op::Constant => {}
            Op::Param(pid) => store.accumulate_grad(*pid, g),

            Op::MatMul(a, b) => {
                if self.needs_grad(*a) {
                    self.acc(grads, *a, g.matmul_nt(self.value(*b)));
                }
                if self.needs_grad(*b) {
                    self.acc(grads, *b, self.value(*a).matmul_tn(g));
                }
            }
            Op::SpMM { m, x } => {
                if self.needs_grad(*x) {
                    self.acc(grads, *x, m.spmm_t(g));
                }
            }

            Op::Add(a, b) => {
                self.acc(grads, *a, g.clone());
                self.acc(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                self.acc(grads, *a, g.clone());
                self.acc(grads, *b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                if self.needs_grad(*a) {
                    self.acc(grads, *a, g.mul(self.value(*b)));
                }
                if self.needs_grad(*b) {
                    self.acc(grads, *b, g.mul(self.value(*a)));
                }
            }
            Op::Div(a, b) => {
                let bv = self.value(*b);
                if self.needs_grad(*a) {
                    self.acc(grads, *a, g.div(bv));
                }
                if self.needs_grad(*b) {
                    // d/db (a/b) = -a / b²
                    let d = g.mul(self.value(*a)).div(bv).div(bv).scale(-1.0);
                    self.acc(grads, *b, d);
                }
            }
            Op::Scale(x, alpha) => self.acc(grads, *x, g.scale(*alpha)),
            Op::AddConst(x, _) => self.acc(grads, *x, g.clone()),
            Op::Pow { x, p, eps } => {
                let xv = self.value(*x);
                let d = Tensor::from_fn(xv.rows(), xv.cols(), |i, j| {
                    p * (xv.get(i, j) + eps).powf(p - 1.0)
                });
                self.acc(grads, *x, g.mul(&d));
            }

            Op::Exp(x) => {
                // d/dx e^x = e^x = out.
                self.acc(grads, *x, g.mul(out));
            }
            Op::Relu(x) => {
                let d = g.mul(&out.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
                self.acc(grads, *x, d);
            }
            Op::LeakyRelu(x, slope) => {
                // slope > 0 ⇒ output sign mirrors input sign.
                let s = *slope;
                let d = g.mul(&out.map(|v| if v >= 0.0 { 1.0 } else { s }));
                self.acc(grads, *x, d);
            }
            Op::Sigmoid(x) => {
                let d = g.mul(&out.map(|y| y * (1.0 - y)));
                self.acc(grads, *x, d);
            }
            Op::Tanh(x) => {
                let d = g.mul(&out.map(|y| 1.0 - y * y));
                self.acc(grads, *x, d);
            }
            Op::Dropout { x, mask } => self.acc(grads, *x, g.mul(mask)),

            Op::AddRowBroadcast(x, b) => {
                self.acc(grads, *x, g.clone());
                if self.needs_grad(*b) {
                    self.acc(grads, *b, g.sum_rows());
                }
            }
            Op::AddColBroadcast(x, c) => {
                self.acc(grads, *x, g.clone());
                if self.needs_grad(*c) {
                    self.acc(grads, *c, g.sum_cols());
                }
            }
            Op::MulColBroadcast(x, c) => {
                if self.needs_grad(*x) {
                    self.acc(grads, *x, g.mul_col_broadcast(self.value(*c)));
                }
                if self.needs_grad(*c) {
                    self.acc(grads, *c, g.mul(self.value(*x)).sum_cols());
                }
            }
            Op::MulScalarNode(x, s) => {
                let sv = self.value(*s).get(0, 0);
                if self.needs_grad(*x) {
                    self.acc(grads, *x, g.scale(sv));
                }
                if self.needs_grad(*s) {
                    self.acc(grads, *s, Tensor::full(1, 1, g.dot(self.value(*x))));
                }
            }

            Op::LogSoftmax(x) => {
                // dx = g − softmax(x) ⊙ rowsum(g); out already holds log p.
                let sm = out.map(f32::exp);
                let row_sums = g.sum_cols();
                let d = g.sub(&sm.mul_col_broadcast(&row_sums));
                self.acc(grads, *x, d);
            }
            Op::ConcatCols(parts) => {
                let mut off = 0;
                for &p in parts {
                    let w = self.value(p).cols();
                    if self.needs_grad(p) {
                        self.acc(grads, p, g.slice_cols(off, off + w));
                    }
                    off += w;
                }
            }
            Op::SliceCols { x, lo, hi } => {
                let xv = self.value(*x);
                let mut d = Tensor::zeros(xv.rows(), xv.cols());
                for i in 0..g.rows() {
                    d.row_mut(i)[*lo..*hi].copy_from_slice(g.row(i));
                }
                self.acc(grads, *x, d);
            }
            Op::GatherRows { x, idx } => {
                let xv = self.value(*x);
                let mut d = Tensor::zeros(xv.rows(), xv.cols());
                for (k, &src) in idx.iter().enumerate() {
                    let row = g.row(k);
                    for (o, &v) in d.row_mut(src).iter_mut().zip(row) {
                        *o += v;
                    }
                }
                self.acc(grads, *x, d);
            }

            Op::SumAll(x) => {
                let xv = self.value(*x);
                self.acc(
                    grads,
                    *x,
                    Tensor::full(xv.rows(), xv.cols(), g.get(0, 0)),
                );
            }
            Op::SumRows(x) => {
                let xv = self.value(*x);
                let d = Tensor::zeros(xv.rows(), xv.cols()).add_row_broadcast(g);
                self.acc(grads, *x, d);
            }
            Op::SumCols(x) => {
                let xv = self.value(*x);
                let d = Tensor::zeros(xv.rows(), xv.cols()).add_col_broadcast(g);
                self.acc(grads, *x, d);
            }

            Op::MaxStack { parts, argmax } => {
                for (k, &p) in parts.iter().enumerate() {
                    if !self.needs_grad(p) {
                        continue;
                    }
                    let pv = self.value(p);
                    let mut d = Tensor::zeros(pv.rows(), pv.cols());
                    for (pos, dv) in d.as_mut_slice().iter_mut().enumerate() {
                        if argmax[pos] == k as u32 {
                            *dv = g.as_slice()[pos];
                        }
                    }
                    self.acc(grads, p, d);
                }
            }
            Op::StMulCol { x, p, mask } => {
                if self.needs_grad(*x) {
                    self.acc(grads, *x, g.mul_col_broadcast(mask));
                }
                if self.needs_grad(*p) {
                    // Straight-through: d/dp ≈ d/dmask = Σ_j g[i,j]·x[i,j].
                    self.acc(grads, *p, g.mul(self.value(*x)).sum_cols());
                }
            }
            Op::NllMasked { logp, labels, idx } => {
                let lv = self.value(*logp);
                let mut d = Tensor::zeros(lv.rows(), lv.cols());
                let w = -g.get(0, 0) / idx.len() as f32;
                for &i in idx.iter() {
                    d[(i, labels[i])] += w;
                }
                self.acc(grads, *logp, d);
            }

            Op::GatAggregate { adj, z, ssrc, sdst, alpha, dleaky, .. } => {
                let zv = self.value(*z);
                let n = adj.rows();
                let d = zv.cols();
                let mut dz = Tensor::zeros(n, d);
                let mut dssrc = Tensor::zeros(n, 1);
                let mut dsdst = Tensor::zeros(n, 1);
                let mut dalpha: Vec<f32> = Vec::new();
                for i in 0..n {
                    let lo = adj.indptr()[i];
                    let hi = adj.indptr()[i + 1];
                    if lo == hi {
                        continue;
                    }
                    let g_row = g.row(i);
                    dalpha.clear();
                    let mut weighted_sum = 0.0f32; // Σ_k α_ik · dα_ik
                    for e in lo..hi {
                        let j = adj.indices()[e] as usize;
                        let da: f32 = g_row
                            .iter()
                            .zip(zv.row(j))
                            .map(|(a, b)| a * b)
                            .sum();
                        dalpha.push(da);
                        weighted_sum += alpha[e] * da;
                    }
                    let mut dsi = 0.0f32;
                    for (k, e) in (lo..hi).enumerate() {
                        let j = adj.indices()[e] as usize;
                        // Softmax Jacobian, then LeakyReLU slope.
                        let du = alpha[e] * (dalpha[k] - weighted_sum) * dleaky[e];
                        dsi += du;
                        dsdst[(j, 0)] += du;
                        // dz_j += α_ij · g_i
                        let a = alpha[e];
                        for (o, &gg) in dz.row_mut(j).iter_mut().zip(g_row) {
                            *o += a * gg;
                        }
                    }
                    dssrc[(i, 0)] = dsi;
                }
                if self.needs_grad(*z) {
                    self.acc(grads, *z, dz);
                }
                if self.needs_grad(*ssrc) {
                    self.acc(grads, *ssrc, dssrc);
                }
                if self.needs_grad(*sdst) {
                    self.acc(grads, *sdst, dsdst);
                }
            }
        }
    }
}
