//! Record-time constructors for neural-network ops: activations, dropout,
//! broadcasts, the classification objective, and the two Lasagne-specific
//! primitives (element-wise layer max, straight-through Bernoulli gates).

use std::rc::Rc;

use lasagne_tensor::{Tensor, TensorRng};

use crate::tape::{NodeId, Op, Tape};

impl Tape {
    /// Element-wise `e^x`.
    pub fn exp(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).map(f32::exp);
        let needs = self.needs_grad(x);
        self.push(v, Op::Exp(x), needs)
    }

    /// `max(0, x)`.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).relu();
        let needs = self.needs_grad(x);
        self.push(v, Op::Relu(x), needs)
    }

    /// Leaky ReLU with negative slope.
    pub fn leaky_relu(&mut self, x: NodeId, slope: f32) -> NodeId {
        let v = self.value(x).leaky_relu(slope);
        let needs = self.needs_grad(x);
        self.push(v, Op::LeakyRelu(x, slope), needs)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).sigmoid();
        let needs = self.needs_grad(x);
        self.push(v, Op::Sigmoid(x), needs)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).tanh();
        let needs = self.needs_grad(x);
        self.push(v, Op::Tanh(x), needs)
    }

    /// Inverted dropout: keeps each entry with probability `keep` and scales
    /// survivors by `1/keep`. Identity when `keep == 1.0`.
    pub fn dropout(&mut self, x: NodeId, keep: f32, rng: &mut TensorRng) -> NodeId {
        if keep >= 1.0 {
            return x;
        }
        let (r, c) = self.value(x).shape();
        let mask = rng.dropout_mask(r, c, keep);
        let v = self.value(x).mul(&mask);
        let needs = self.needs_grad(x);
        self.push(v, Op::Dropout { x, mask }, needs)
    }

    /// `x (N×D) + b (1×D)` broadcast over rows (bias add).
    pub fn add_row_broadcast(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let v = self.value(x).add_row_broadcast(self.value(b));
        let needs = self.needs_grad(x) || self.needs_grad(b);
        self.push(v, Op::AddRowBroadcast(x, b), needs)
    }

    /// `x (N×D) + c (N×1)` broadcast over columns (per-node shift; used for
    /// the row-max stabilization of the stochastic aggregator's softmax-like
    /// normalization, Eq 6).
    pub fn add_col_broadcast(&mut self, x: NodeId, c: NodeId) -> NodeId {
        let v = self.value(x).add_col_broadcast(self.value(c));
        let needs = self.needs_grad(x) || self.needs_grad(c);
        self.push(v, Op::AddColBroadcast(x, c), needs)
    }

    /// `x (N×D) ⊙ c (N×1)` broadcast over columns — per-node scaling, the
    /// `C(l)[:, i] ⊗ H(i)` of Eq (5).
    pub fn mul_col_broadcast(&mut self, x: NodeId, c: NodeId) -> NodeId {
        let v = self.value(x).mul_col_broadcast(self.value(c));
        let needs = self.needs_grad(x) || self.needs_grad(c);
        self.push(v, Op::MulColBroadcast(x, c), needs)
    }

    /// Row-wise log-softmax (the paper's Eq 2 softmax, in log space for a
    /// stable cross-entropy).
    pub fn log_softmax(&mut self, x: NodeId) -> NodeId {
        let v = self.value(x).log_softmax_rows();
        let needs = self.needs_grad(x);
        self.push(v, Op::LogSoftmax(x), needs)
    }

    /// Mean negative log-likelihood over the labeled node subset `idx`
    /// (Eq 3 normalized by the number of labeled nodes).
    pub fn nll_masked(
        &mut self,
        logp: NodeId,
        labels: Rc<Vec<usize>>,
        idx: Rc<Vec<usize>>,
    ) -> NodeId {
        assert!(!idx.is_empty(), "nll_masked: empty labeled set");
        let lp = self.value(logp);
        let mut acc = 0.0f32;
        for &i in idx.iter() {
            acc -= lp.get(i, labels[i]);
        }
        let v = Tensor::full(1, 1, acc / idx.len() as f32);
        let needs = self.needs_grad(logp);
        self.push(v, Op::NllMasked { logp, labels, idx }, needs)
    }

    /// Element-wise maximum over same-shaped nodes; the Max-Pooling layer
    /// aggregator of §4.1.2 ("captures the most informative layer for each
    /// feature coordinate without additional parameters").
    pub fn max_stack(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "max_stack: empty input");
        let shape = self.value(parts[0]).shape();
        for &p in parts {
            assert_eq!(self.value(p).shape(), shape, "max_stack: shape mismatch");
        }
        let mut v = self.value(parts[0]).clone();
        let mut argmax = vec![0u32; v.len()];
        for (k, &p) in parts.iter().enumerate().skip(1) {
            let pv = self.value(p);
            for (pos, (best, cand)) in v
                .as_mut_slice()
                .iter_mut()
                .zip(pv.as_slice())
                .enumerate()
            {
                if *cand > *best {
                    *best = *cand;
                    argmax[pos] = k as u32;
                }
            }
        }
        let needs = parts.iter().any(|&p| self.needs_grad(p));
        self.push(
            v,
            Op::MaxStack { parts: parts.to_vec(), argmax },
            needs,
        )
    }

    /// Straight-through Bernoulli gate (Eq 6): samples `m_i ~ Bernoulli(p_i)`
    /// per node (`p` is `N×1`, clamped to `[0,1]`) and returns `x ⊙ m`
    /// (column-broadcast). Backward passes the gate gradient straight
    /// through to `p`.
    pub fn st_bernoulli_gate(&mut self, x: NodeId, p: NodeId, rng: &mut TensorRng) -> NodeId {
        assert_eq!(self.value(p).cols(), 1, "st_bernoulli_gate: p must be N×1");
        assert_eq!(
            self.value(p).rows(),
            self.value(x).rows(),
            "st_bernoulli_gate: row mismatch"
        );
        let pv = self.value(p);
        let mask_vals: Vec<f32> = (0..pv.rows())
            .map(|i| if rng.bernoulli(pv.get(i, 0)) { 1.0 } else { 0.0 })
            .collect();
        let mask = Tensor::col_vector(&mask_vals);
        let v = self.value(x).mul_col_broadcast(&mask);
        let needs = self.needs_grad(x) || self.needs_grad(p);
        self.push(v, Op::StMulCol { x, p, mask }, needs)
    }

    /// Deterministic evaluation-time counterpart of
    /// [`Tape::st_bernoulli_gate`]: multiplies by the expected mask (the
    /// probabilities themselves).
    pub fn expected_gate(&mut self, x: NodeId, p: NodeId) -> NodeId {
        self.mul_col_broadcast(x, p)
    }

    /// PairNorm (Zhao & Akoglu, ICLR'20), composed from primitive ops:
    /// center columns, then rescale every row to the same average norm `s`.
    /// Used by the PairNorm baseline of Table 3.
    pub fn pairnorm(&mut self, x: NodeId, s: f32) -> NodeId {
        let (n, _d) = self.value(x).shape();
        // Column means as 1×D, broadcast-subtract.
        let col_sums = self.sum_rows(x);
        let neg_mean = self.scale(col_sums, -1.0 / n as f32);
        let centered = self.add_row_broadcast(x, neg_mean);
        // Mean squared row norm (1×1).
        let sq = self.mul(centered, centered);
        let total = self.sum_all(sq);
        let mean_sq = self.scale(total, 1.0 / n as f32);
        // s / sqrt(mean_sq + eps)
        let inv = self.pow(mean_sq, -0.5, 1e-6);
        let scale = self.scale(inv, s);
        self.mul_scalar_node(centered, scale)
    }
}
