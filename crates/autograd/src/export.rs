//! Export an eval-mode forward pass as a static, tape-free **program**.
//!
//! A [`Tape`] is a define-by-run graph: rebuilding it per query drags the
//! whole autograd machinery (gradient flags, captured backward data) into
//! inference. For serving we instead record the tape *once* — with the
//! model in `Mode::Eval`, so there are no dropout masks or sampled gates —
//! and convert the subgraph reachable from the logits into a flat
//! [`Program`]: a topologically ordered list of [`ProgramOp`]s over dense
//! tensors, a deduplicated table of sparse operators, and parameter leaves
//! referenced **by name** (bound to a weight table at load time).
//!
//! The program's evaluator (`lasagne-serve`) calls the exact same
//! `lasagne-tensor` / `lasagne-sparse` kernels the tape constructors call,
//! in the same order, so a frozen forward is bitwise-identical to the
//! training-path eval forward at any thread count.
//!
//! Train-only ops (dropout, sampled Bernoulli gates, the masked NLL loss)
//! must not appear in an inference program; exporting one is a typed
//! [`ExportError`], not a silent approximation.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;

use crate::tape::{NodeId, Op, Tape};
use crate::ParamStore;

/// Why a tape could not be exported as an inference program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExportError {
    /// The reachable subgraph contains an op that only makes sense during
    /// training (dropout, sampled gates, loss terms).
    TrainOnlyOp {
        /// Tape index of the offending node.
        node: usize,
        /// Op name, for the error message.
        op: &'static str,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::TrainOnlyOp { node, op } => write!(
                f,
                "tape node {node} is a train-only op ({op}); export the model's Mode::Eval forward"
            ),
        }
    }
}

impl std::error::Error for ExportError {}

/// One instruction of a frozen inference program. Operand indices refer to
/// earlier instructions; `adj`/`m` index the program's sparse table.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramOp {
    /// Literal tensor (input features, precomputed constants).
    Constant { value: Tensor },
    /// Named parameter leaf, bound against a weight table at load time.
    Param { name: String },
    /// `a · b`.
    MatMul { a: usize, b: usize },
    /// Sparse `m · x`.
    SpMM { m: usize, x: usize },
    /// `a + b`.
    Add { a: usize, b: usize },
    /// `a - b`.
    Sub { a: usize, b: usize },
    /// `a ⊙ b`.
    Mul { a: usize, b: usize },
    /// `a / b`.
    Div { a: usize, b: usize },
    /// `alpha * x`.
    Scale { x: usize, alpha: f32 },
    /// `x + c`.
    AddConst { x: usize, c: f32 },
    /// `(x + eps)^p`.
    Pow { x: usize, p: f32, eps: f32 },
    /// `e^x`.
    Exp { x: usize },
    /// `max(0, x)`.
    Relu { x: usize },
    /// Leaky ReLU.
    LeakyRelu { x: usize, slope: f32 },
    /// Logistic sigmoid.
    Sigmoid { x: usize },
    /// Hyperbolic tangent.
    Tanh { x: usize },
    /// `x (N×D) + b (1×D)`.
    AddRowBroadcast { x: usize, b: usize },
    /// `x (N×D) + c (N×1)`.
    AddColBroadcast { x: usize, c: usize },
    /// `x (N×D) ⊙ c (N×1)`.
    MulColBroadcast { x: usize, c: usize },
    /// `x * s` with a `1×1` operand.
    MulScalarNode { x: usize, s: usize },
    /// Row-wise log-softmax.
    LogSoftmax { x: usize },
    /// Concatenate operands side by side.
    ConcatCols { parts: Vec<usize> },
    /// Columns `[lo, hi)`.
    SliceCols { x: usize, lo: usize, hi: usize },
    /// Gather rows in the given order.
    GatherRows { x: usize, idx: Vec<usize> },
    /// Sum of all elements as `1×1`.
    SumAll { x: usize },
    /// Column sums `N×D → 1×D`.
    SumRows { x: usize },
    /// Row sums `N×D → N×1`.
    SumCols { x: usize },
    /// Element-wise max over same-shaped operands.
    MaxStack { parts: Vec<usize> },
    /// GAT neighborhood attention (recomputed from scratch at eval via
    /// [`crate::gat_attention`]).
    GatAggregate {
        /// Sparse-table index of the neighborhood structure.
        adj: usize,
        /// Projected features `z = H·W`.
        z: usize,
        /// `z·a_src` attention half.
        ssrc: usize,
        /// `z·a_dst` attention half.
        sdst: usize,
        /// LeakyReLU negative slope.
        slope: f32,
    },
}

impl ProgramOp {
    /// Indices of the instructions this op reads.
    pub fn inputs(&self) -> Vec<usize> {
        use ProgramOp::*;
        match self {
            Constant { .. } | Param { .. } => Vec::new(),
            MatMul { a, b } | Add { a, b } | Sub { a, b } | Mul { a, b } | Div { a, b } => {
                vec![*a, *b]
            }
            SpMM { x, .. }
            | Scale { x, .. }
            | AddConst { x, .. }
            | Pow { x, .. }
            | Exp { x }
            | Relu { x }
            | LeakyRelu { x, .. }
            | Sigmoid { x }
            | Tanh { x }
            | LogSoftmax { x }
            | SliceCols { x, .. }
            | GatherRows { x, .. }
            | SumAll { x }
            | SumRows { x }
            | SumCols { x } => vec![*x],
            AddRowBroadcast { x, b } => vec![*x, *b],
            AddColBroadcast { x, c } | MulColBroadcast { x, c } => vec![*x, *c],
            MulScalarNode { x, s } => vec![*x, *s],
            ConcatCols { parts } | MaxStack { parts } => parts.clone(),
            GatAggregate { z, ssrc, sdst, .. } => vec![*z, *ssrc, *sdst],
        }
    }
}

/// A frozen inference program: the eval-mode forward of one model on one
/// graph, pruned to the subgraph that produces the logits.
#[derive(Clone)]
pub struct Program {
    /// Topologically ordered instructions; the last evaluated values feed
    /// [`Program::output`].
    pub ops: Vec<ProgramOp>,
    /// Deduplicated sparse operators (`Â`, `adj+I`, `D̃⁻¹(A+I)`, …).
    pub sparse: Vec<Rc<Csr>>,
    /// Index of the instruction whose value is the model output.
    pub output: usize,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("ops", &self.ops.len())
            .field("sparse", &self.sparse.len())
            .field("output", &self.output)
            .finish()
    }
}

impl Program {
    /// Names of the parameters the program binds, in first-use order,
    /// deduplicated.
    pub fn param_names(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for op in &self.ops {
            if let ProgramOp::Param { name } = op {
                if !seen.contains(&name.as_str()) {
                    seen.push(name);
                }
            }
        }
        seen
    }

    /// Names of parameters consumed **exclusively** as the right operand of
    /// `MatMul` ops (and not as the program output). These are the weights a
    /// quantized serve path may store compressed and dequantize on the fly
    /// inside the matmul panel loop: every use site goes through the packed
    /// micro-kernel, so materializing vs fusing is bitwise-neutral. A weight
    /// that also feeds any other op (bias adds, attention scores, …) — or
    /// the `a` side of a matmul — stays exact.
    pub fn matmul_only_params(&self) -> Vec<&str> {
        let mut ok = vec![true; self.ops.len()];
        for op in &self.ops {
            match op {
                // The `b` slot is the one fusable position; `a` is not.
                ProgramOp::MatMul { a, .. } => ok[*a] = false,
                _ => {
                    for inp in op.inputs() {
                        ok[inp] = false;
                    }
                }
            }
        }
        if let Some(slot) = ok.get_mut(self.output) {
            *slot = false;
        }
        let mut names: Vec<&str> = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            if let ProgramOp::Param { name } = op {
                if ok[i] && !names.contains(&name.as_str()) {
                    names.push(name);
                }
            }
        }
        // A name can bind several Param slots (shared weights); it is
        // matmul-only only if *every* slot is.
        names.retain(|n| {
            self.ops.iter().enumerate().all(|(i, op)| match op {
                ProgramOp::Param { name } if name == n => ok[i],
                _ => true,
            })
        });
        names
    }
}

/// Mark every tape index reachable from `output` by walking op inputs.
fn reachable_set(tape: &Tape, output: NodeId) -> Vec<bool> {
    let mut keep = vec![false; tape.len()];
    let mut stack = vec![output.0];
    while let Some(i) = stack.pop() {
        if keep[i] {
            continue;
        }
        keep[i] = true;
        match &tape.nodes[i].op {
            Op::Constant | Op::Param(_) => {}
            Op::MatMul(a, b)
            | Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Div(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::AddColBroadcast(a, b)
            | Op::MulColBroadcast(a, b)
            | Op::MulScalarNode(a, b) => {
                stack.push(a.0);
                stack.push(b.0);
            }
            Op::SpMM { x, .. }
            | Op::Scale(x, _)
            | Op::AddConst(x, _)
            | Op::Pow { x, .. }
            | Op::Exp(x)
            | Op::Relu(x)
            | Op::LeakyRelu(x, _)
            | Op::Sigmoid(x)
            | Op::Tanh(x)
            | Op::Dropout { x, .. }
            | Op::LogSoftmax(x)
            | Op::SliceCols { x, .. }
            | Op::GatherRows { x, .. }
            | Op::SumAll(x)
            | Op::SumRows(x)
            | Op::SumCols(x) => stack.push(x.0),
            Op::ConcatCols(parts) => stack.extend(parts.iter().map(|p| p.0)),
            Op::MaxStack { parts, .. } => stack.extend(parts.iter().map(|p| p.0)),
            Op::StMulCol { x, p, .. } => {
                stack.push(x.0);
                stack.push(p.0);
            }
            Op::NllMasked { logp, .. } => stack.push(logp.0),
            Op::GatAggregate { z, ssrc, sdst, .. } => {
                stack.push(z.0);
                stack.push(ssrc.0);
                stack.push(sdst.0);
            }
        }
    }
    keep
}

impl Tape {
    /// Convert the subgraph of this tape that produces `output` into a
    /// standalone [`Program`]. Parameter leaves are exported by their
    /// registered name in `store`; sparse operands are deduplicated by
    /// identity. Fails with [`ExportError::TrainOnlyOp`] if the subgraph
    /// contains dropout, sampled gates, or loss ops — record the forward in
    /// `Mode::Eval` to avoid them.
    pub fn export_program(
        &self,
        store: &ParamStore,
        output: NodeId,
    ) -> Result<Program, ExportError> {
        let keep = reachable_set(self, output);
        // Remap kept tape indices to dense program indices, preserving the
        // tape's (already topological) order.
        let mut remap = vec![usize::MAX; self.len()];
        let mut next = 0usize;
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = next;
                next += 1;
            }
        }
        let mut sparse: Vec<Rc<Csr>> = Vec::new();
        let mut sparse_ids: HashMap<*const Csr, usize> = HashMap::new();
        let mut intern = |m: &Rc<Csr>, sparse: &mut Vec<Rc<Csr>>| -> usize {
            let key = Rc::as_ptr(m);
            *sparse_ids.entry(key).or_insert_with(|| {
                sparse.push(Rc::clone(m));
                sparse.len() - 1
            })
        };

        let mut ops = Vec::with_capacity(next);
        for (i, node) in self.nodes.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let r = |n: &NodeId| remap[n.0];
            let op = match &node.op {
                Op::Constant => ProgramOp::Constant { value: node.value.clone() },
                Op::Param(id) => ProgramOp::Param { name: store.name(*id).to_string() },
                Op::MatMul(a, b) => ProgramOp::MatMul { a: r(a), b: r(b) },
                Op::SpMM { m, x } => {
                    ProgramOp::SpMM { m: intern(m, &mut sparse), x: r(x) }
                }
                Op::Add(a, b) => ProgramOp::Add { a: r(a), b: r(b) },
                Op::Sub(a, b) => ProgramOp::Sub { a: r(a), b: r(b) },
                Op::Mul(a, b) => ProgramOp::Mul { a: r(a), b: r(b) },
                Op::Div(a, b) => ProgramOp::Div { a: r(a), b: r(b) },
                Op::Scale(x, alpha) => ProgramOp::Scale { x: r(x), alpha: *alpha },
                Op::AddConst(x, c) => ProgramOp::AddConst { x: r(x), c: *c },
                Op::Pow { x, p, eps } => ProgramOp::Pow { x: r(x), p: *p, eps: *eps },
                Op::Exp(x) => ProgramOp::Exp { x: r(x) },
                Op::Relu(x) => ProgramOp::Relu { x: r(x) },
                Op::LeakyRelu(x, slope) => ProgramOp::LeakyRelu { x: r(x), slope: *slope },
                Op::Sigmoid(x) => ProgramOp::Sigmoid { x: r(x) },
                Op::Tanh(x) => ProgramOp::Tanh { x: r(x) },
                Op::AddRowBroadcast(x, b) => ProgramOp::AddRowBroadcast { x: r(x), b: r(b) },
                Op::AddColBroadcast(x, c) => ProgramOp::AddColBroadcast { x: r(x), c: r(c) },
                Op::MulColBroadcast(x, c) => ProgramOp::MulColBroadcast { x: r(x), c: r(c) },
                Op::MulScalarNode(x, s) => ProgramOp::MulScalarNode { x: r(x), s: r(s) },
                Op::LogSoftmax(x) => ProgramOp::LogSoftmax { x: r(x) },
                Op::ConcatCols(parts) => {
                    ProgramOp::ConcatCols { parts: parts.iter().map(r).collect() }
                }
                Op::SliceCols { x, lo, hi } => {
                    ProgramOp::SliceCols { x: r(x), lo: *lo, hi: *hi }
                }
                Op::GatherRows { x, idx } => {
                    ProgramOp::GatherRows { x: r(x), idx: (**idx).clone() }
                }
                Op::SumAll(x) => ProgramOp::SumAll { x: r(x) },
                Op::SumRows(x) => ProgramOp::SumRows { x: r(x) },
                Op::SumCols(x) => ProgramOp::SumCols { x: r(x) },
                Op::MaxStack { parts, .. } => {
                    ProgramOp::MaxStack { parts: parts.iter().map(r).collect() }
                }
                Op::GatAggregate { adj, z, ssrc, sdst, slope, .. } => ProgramOp::GatAggregate {
                    adj: intern(adj, &mut sparse),
                    z: r(z),
                    ssrc: r(ssrc),
                    sdst: r(sdst),
                    slope: *slope,
                },
                Op::Dropout { .. } => {
                    return Err(ExportError::TrainOnlyOp { node: i, op: "dropout" })
                }
                Op::StMulCol { .. } => {
                    return Err(ExportError::TrainOnlyOp { node: i, op: "st_bernoulli_gate" })
                }
                Op::NllMasked { .. } => {
                    return Err(ExportError::TrainOnlyOp { node: i, op: "nll_masked" })
                }
            };
            ops.push(op);
        }
        Ok(Program { ops, sparse, output: remap[output.0] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_tensor::TensorRng;

    #[test]
    fn export_prunes_and_remaps() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let w = store.add("w", rng.uniform_tensor(3, 2, -1.0, 1.0));
        let mut tape = Tape::new();
        let x = tape.constant(rng.uniform_tensor(4, 3, -1.0, 1.0));
        let _dead = tape.constant(Tensor::ones(7, 7)); // unreachable from out
        let wn = tape.param(w, &store);
        let xw = tape.matmul(x, wn);
        let a = Rc::new(Csr::identity(4));
        let prop = tape.spmm(Rc::clone(&a), xw);
        let prop2 = tape.spmm(Rc::clone(&a), prop); // same Rc: dedup to 1 entry
        let out = tape.relu(prop2);

        let prog = tape.export_program(&store, out).expect("exports");
        assert_eq!(prog.ops.len(), 6, "dead node pruned");
        assert_eq!(prog.sparse.len(), 1, "sparse operand deduplicated");
        assert_eq!(prog.output, 5);
        assert_eq!(prog.param_names(), vec!["w"]);
        assert!(matches!(prog.ops[prog.output], ProgramOp::Relu { .. }));
    }

    #[test]
    fn train_only_ops_are_rejected() {
        let mut rng = TensorRng::seed_from_u64(1);
        let store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.constant(rng.uniform_tensor(4, 3, -1.0, 1.0));
        let mut trng = TensorRng::seed_from_u64(2);
        let dropped = tape.dropout(x, 0.5, &mut trng);
        let err = tape.export_program(&store, dropped).unwrap_err();
        assert!(matches!(err, ExportError::TrainOnlyOp { op: "dropout", .. }), "{err}");
    }
}
