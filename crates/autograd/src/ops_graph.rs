//! Graph ops: sparse propagation (the GCN convolution) and GAT-style
//! neighborhood attention over a CSR structure.

use std::rc::Rc;

use lasagne_sparse::Csr;
use lasagne_tensor::Tensor;

use crate::tape::{NodeId, Op, Tape};

/// Result of the GAT attention forward pass: the aggregated output plus the
/// per-edge attention coefficients and LeakyReLU slopes that backward needs.
pub struct GatForward {
    /// `N×D` attention-weighted neighborhood aggregation.
    pub out: Tensor,
    /// Normalized attention coefficient per CSR edge.
    pub alpha: Vec<f32>,
    /// LeakyReLU derivative (1 or `slope`) per CSR edge.
    pub dleaky: Vec<f32>,
}

/// The forward computation of [`Tape::gat_aggregate`] as a pure function —
/// shared between the training tape and the tape-free inference engine
/// (`lasagne-serve`), so the two paths are bitwise-identical by
/// construction.
pub fn gat_attention(
    adj: &Csr,
    zv: &Tensor,
    s_src: &Tensor,
    s_dst: &Tensor,
    slope: f32,
) -> GatForward {
    let n = adj.rows();
    assert_eq!(zv.rows(), n, "gat_attention: z rows != graph size");
    assert_eq!(s_src.shape(), (n, 1), "gat_attention: ssrc must be N×1");
    assert_eq!(s_dst.shape(), (n, 1), "gat_attention: sdst must be N×1");
    let d = zv.cols();

    let mut alpha = vec![0.0f32; adj.nnz()];
    let mut dleaky = vec![0.0f32; adj.nnz()];
    let mut out = Tensor::zeros(n, d);
    let mut row_e: Vec<f32> = Vec::new();
    for i in 0..n {
        let lo = adj.indptr()[i];
        let hi = adj.indptr()[i + 1];
        if lo == hi {
            continue;
        }
        let si = s_src.get(i, 0);
        row_e.clear();
        for e in lo..hi {
            let j = adj.indices()[e] as usize;
            let u = si + s_dst.get(j, 0);
            dleaky[e] = if u >= 0.0 { 1.0 } else { slope };
            row_e.push(if u >= 0.0 { u } else { slope * u });
        }
        // Stable softmax over the row.
        let m = row_e.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row_e.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        let o_row = out.row_mut(i);
        for (k, e) in (lo..hi).enumerate() {
            let a = row_e[k] * inv;
            alpha[e] = a;
            let j = adj.indices()[e] as usize;
            let z_row = zv.row(j);
            for (o, &zz) in o_row.iter_mut().zip(z_row) {
                *o += a * zz;
            }
        }
    }
    GatForward { out, alpha, dleaky }
}

impl Tape {
    /// `m · x` with a fixed sparse matrix `m` (usually `Â`). Gradients flow
    /// to `x` only (the graph is not trainable).
    pub fn spmm(&mut self, m: Rc<Csr>, x: NodeId) -> NodeId {
        let v = m.spmm(self.value(x));
        let needs = self.needs_grad(x);
        self.push(v, Op::SpMM { m, x }, needs)
    }

    /// GAT neighborhood attention (Veličković et al., ICLR'18; the paper's
    /// GAT baseline and the base model of Table 7).
    ///
    /// Inputs: `adj` gives the neighborhoods (values ignored, structure
    /// only; include self-loops), `z = H·W` the projected features (`N×D`),
    /// `ssrc = z·a_src` and `sdst = z·a_dst` the two halves of the additive
    /// attention logits (`N×1` each). For target `i` and neighbor `j`:
    ///
    /// ```text
    /// e_ij = LeakyReLU(ssrc_i + sdst_j)     α_i: = softmax_j(e_ij)
    /// out_i = Σ_j α_ij · z_j
    /// ```
    pub fn gat_aggregate(
        &mut self,
        adj: Rc<Csr>,
        z: NodeId,
        ssrc: NodeId,
        sdst: NodeId,
        slope: f32,
    ) -> NodeId {
        let fwd = gat_attention(&adj, self.value(z), self.value(ssrc), self.value(sdst), slope);
        let needs =
            self.needs_grad(z) || self.needs_grad(ssrc) || self.needs_grad(sdst);
        self.push(
            fwd.out,
            Op::GatAggregate {
                adj,
                z,
                ssrc,
                sdst,
                slope,
                alpha: fwd.alpha,
                dleaky: fwd.dleaky,
            },
            needs,
        )
    }
}
