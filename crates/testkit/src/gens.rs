//! Generators for the workspace's common property-test inputs.
//!
//! The testkit sits *below* `lasagne-tensor`/`lasagne-sparse` in the crate
//! graph (they depend on it for randomness), so generators produce plain
//! data — `Vec<f32>` matrices and COO edge lists — that the consuming test
//! converts with `Tensor::from_vec` / `Csr::from_coo`. This keeps the
//! testkit dependency-free while still owning the generation and shrinking
//! logic.

use crate::prop::Gen;
use crate::rng::Rng;

/// A vector generator: `len` elements drawn from `elem`, with shrinking by
/// dropping chunks/elements and by shrinking individual elements.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    /// Element generator.
    pub elem: G,
    /// Length range `[lo, hi)`.
    pub len: std::ops::Range<usize>,
}

/// `len`-element vectors with entries from `elem`.
pub fn vec_of<G: Gen>(elem: G, len: std::ops::Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "vec_of: empty length range");
    VecGen { elem, len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = rng.range_usize(self.len.start, self.len.end);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        let n = v.len();
        // Structural shrinks first: halves, then single-element removals.
        if n > self.len.start {
            let keep_first = &v[..(n / 2).max(self.len.start)];
            if keep_first.len() < n {
                out.push(keep_first.to_vec());
            }
            let keep_last = &v[n - (n / 2).max(self.len.start)..];
            if keep_last.len() < n {
                out.push(keep_last.to_vec());
            }
            for i in 0..n.min(8) {
                let mut smaller = v.clone();
                smaller.remove(i);
                if smaller.len() >= self.len.start {
                    out.push(smaller);
                }
            }
        }
        // Then element-wise shrinks on a prefix (bounded fan-out).
        for i in 0..n.min(4) {
            for cand in self.elem.shrink(&v[i]) {
                let mut next = v.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// Pick uniformly among a fixed set of generator closures — the harness's
/// `prop_oneof!`. All branches must produce the same `Value` type.
pub struct OneOf<T> {
    branches: Vec<Box<dyn Fn(&mut Rng) -> T>>,
}

impl<T> OneOf<T> {
    /// Build from branch closures.
    pub fn new(branches: Vec<Box<dyn Fn(&mut Rng) -> T>>) -> Self {
        assert!(!branches.is_empty(), "OneOf: no branches");
        OneOf { branches }
    }
}

impl<T: Clone + std::fmt::Debug> Gen for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        let i = rng.index(self.branches.len());
        (self.branches[i])(rng)
    }
}

/// A dense row-major matrix of `f32` values — `Tensor::from_vec(rows, cols,
/// data)` away from a `lasagne_tensor::Tensor`.
#[derive(Clone, Debug, PartialEq)]
pub struct Dense {
    /// Row count (≥ 1).
    pub rows: usize,
    /// Column count (≥ 1).
    pub cols: usize,
    /// Row-major entries, `rows * cols` of them.
    pub data: Vec<f32>,
}

/// Generator for [`Dense`] matrices with shape drawn from `rows`/`cols`
/// ranges and i.i.d. uniform entries in `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct DenseGen {
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    lo: f32,
    hi: f32,
}

/// Dense matrices with `rows × cols` shapes and entries in `[lo, hi)`.
pub fn dense(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
    lo: f32,
    hi: f32,
) -> DenseGen {
    assert!(rows.start >= 1 && cols.start >= 1, "dense: shapes must be ≥ 1");
    DenseGen { rows, cols, lo, hi }
}

impl Gen for DenseGen {
    type Value = Dense;

    fn generate(&self, rng: &mut Rng) -> Dense {
        let rows = rng.range_usize(self.rows.start, self.rows.end);
        let cols = rng.range_usize(self.cols.start, self.cols.end);
        let data = (0..rows * cols).map(|_| rng.range_f32(self.lo, self.hi)).collect();
        Dense { rows, cols, data }
    }

    fn shrink(&self, v: &Dense) -> Vec<Dense> {
        // Shrink the shape (dropping trailing rows/columns), not the values.
        let mut out = Vec::new();
        if v.rows > self.rows.start {
            let rows = v.rows - 1;
            out.push(Dense { rows, cols: v.cols, data: v.data[..rows * v.cols].to_vec() });
        }
        if v.cols > self.cols.start {
            let cols = v.cols - 1;
            let data = (0..v.rows)
                .flat_map(|r| v.data[r * v.cols..r * v.cols + cols].iter().copied())
                .collect();
            out.push(Dense { rows: v.rows, cols, data });
        }
        out
    }
}

/// A random graph/matrix in COO form, ready for `Csr::from_coo(n, n,
/// &entries)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CooGraph {
    /// Square dimension (node count).
    pub n: usize,
    /// `(row, col, value)` triples; may contain duplicates.
    pub entries: Vec<(u32, u32, f32)>,
}

/// Generator for [`CooGraph`]s.
#[derive(Clone, Debug)]
pub struct CooGen {
    n: std::ops::Range<usize>,
    density: f64,
    lo: f32,
    hi: f32,
    symmetric_01: bool,
}

/// Random sparse square matrix: each of the `n²` cells is present with
/// probability `density`, with a uniform value in `[lo, hi)`.
pub fn coo_graph(n: std::ops::Range<usize>, density: f64, lo: f32, hi: f32) -> CooGen {
    assert!(n.start >= 1, "coo_graph: need ≥ 1 node");
    CooGen { n, density, lo, hi, symmetric_01: false }
}

/// Random symmetric unweighted adjacency (no self-loops): each unordered
/// pair `{i, j}` is an edge with probability `density`, stored in both
/// directions with weight 1.
pub fn sym_adj(n: std::ops::Range<usize>, density: f64) -> CooGen {
    assert!(n.start >= 1, "sym_adj: need ≥ 1 node");
    CooGen { n, density, lo: 1.0, hi: 1.0, symmetric_01: true }
}

impl Gen for CooGen {
    type Value = CooGraph;

    fn generate(&self, rng: &mut Rng) -> CooGraph {
        let n = rng.range_usize(self.n.start, self.n.end);
        let mut entries = Vec::new();
        if self.symmetric_01 {
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.bernoulli(self.density) {
                        entries.push((i as u32, j as u32, 1.0));
                        entries.push((j as u32, i as u32, 1.0));
                    }
                }
            }
        } else {
            for i in 0..n {
                for j in 0..n {
                    if rng.bernoulli(self.density) {
                        let w = if self.lo < self.hi { rng.range_f32(self.lo, self.hi) } else { self.lo };
                        entries.push((i as u32, j as u32, w));
                    }
                }
            }
        }
        CooGraph { n, entries }
    }

    fn shrink(&self, v: &CooGraph) -> Vec<CooGraph> {
        let mut out = Vec::new();
        // Drop the last node (and its incident entries).
        if v.n > self.n.start {
            let n = v.n - 1;
            let entries = v
                .entries
                .iter()
                .copied()
                .filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n)
                .collect();
            out.push(CooGraph { n, entries });
        }
        // Drop edges (in symmetric mode, both directions of the first pair).
        if !v.entries.is_empty() {
            if self.symmetric_01 && v.entries.len() >= 2 {
                out.push(CooGraph { n: v.n, entries: v.entries[2..].to_vec() });
            } else {
                out.push(CooGraph { n: v.n, entries: v.entries[1..].to_vec() });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::{check, Config};

    #[test]
    fn vec_gen_respects_length_range_and_shrinks_smaller() {
        let gen = vec_of(0u64..10, 2..7);
        let mut rng = Rng::seed_from_u64(0);
        for _ in 0..100 {
            let v = gen.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
        let v = vec![5u64, 9, 1, 3, 7];
        for cand in gen.shrink(&v) {
            assert!(cand.len() >= 2);
            assert!(cand.len() <= v.len());
        }
        assert!(gen.shrink(&v).iter().any(|c| c.len() < v.len()));
    }

    #[test]
    fn dense_gen_shape_and_size_agree() {
        check("dense_shape", &Config::cases(64), &dense(1..6, 1..7, -2.0, 2.0), |d| {
            if d.data.len() != d.rows * d.cols {
                return Err(format!("{}x{} with {} entries", d.rows, d.cols, d.data.len()));
            }
            if d.data.iter().any(|v| !(-2.0..2.0).contains(v)) {
                return Err("entry out of range".into());
            }
            Ok(())
        });
    }

    #[test]
    fn dense_shrink_preserves_row_major_layout() {
        let gen = dense(1..5, 1..5, 0.0, 1.0);
        let d = Dense { rows: 3, cols: 2, data: vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1] };
        let shrunk = gen.shrink(&d);
        let fewer_cols = shrunk.iter().find(|s| s.cols == 1).expect("col shrink");
        assert_eq!(fewer_cols.data, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn sym_adj_is_symmetric_without_self_loops() {
        check("sym_adj", &Config::cases(64), &sym_adj(2..10, 0.4), |g| {
            use std::collections::HashSet;
            let set: HashSet<(u32, u32)> = g.entries.iter().map(|&(r, c, _)| (r, c)).collect();
            for &(r, c, w) in &g.entries {
                if r == c {
                    return Err(format!("self-loop at {r}"));
                }
                if w != 1.0 {
                    return Err(format!("weight {w} != 1"));
                }
                if !set.contains(&(c, r)) {
                    return Err(format!("missing reverse of ({r},{c})"));
                }
            }
            Ok(())
        });
    }

    #[test]
    fn coo_entries_stay_in_bounds_under_shrinking() {
        let gen = coo_graph(2..8, 0.5, -1.0, 1.0);
        let mut rng = Rng::seed_from_u64(9);
        let g = gen.generate(&mut rng);
        for cand in gen.shrink(&g) {
            for &(r, c, _) in &cand.entries {
                assert!((r as usize) < cand.n && (c as usize) < cand.n);
            }
        }
    }
}
