//! Zero-dependency test infrastructure for the Lasagne workspace.
//!
//! The tier-1 verify (`cargo build --release --offline && cargo test -q
//! --offline`) must pass with the network unplugged and no vendored
//! registry, so everything the workspace previously pulled from crates.io
//! lives here instead, implemented on `std` alone:
//!
//! * [`rng`] — a deterministic, seedable PRNG (splitmix64 seeding into
//!   xoshiro256\*\*) with uniform / normal / Bernoulli sampling. This is
//!   the single source of randomness for the whole stack;
//!   `lasagne_tensor::TensorRng` is a thin wrapper over [`rng::Rng`].
//! * [`prop`] — a property-based testing harness in the spirit of
//!   `proptest`: run a property over N generated cases, report the failing
//!   case seed on failure, and shrink integers / sizes / vectors to a
//!   minimal counterexample. See [`prop_check!`].
//! * [`gens`] — generators for the workspace's common test inputs: scalar
//!   ranges, vectors, dense row-major matrices, COO edge lists and random
//!   (symmetric) graph adjacencies ready to feed `Csr::from_coo`.
//! * [`json`] — a small JSON value type with a serializer and a
//!   recursive-descent parser, replacing `serde`/`serde_json` for
//!   checkpoints, dataset specs and result tables.
//! * [`bench`] — a wall-clock micro-bench timer (median of N samples with
//!   warmup) replacing `criterion`; the `lasagne-bench` bench targets are
//!   plain `harness = false` binaries built on it.
//! * [`fault`] — deterministic fault injection for robustness tests: a
//!   [`FaultPlan`] schedules NaN gradients and simulated crashes, and the
//!   file helpers corrupt/truncate saved checkpoints reproducibly.
//! * [`chaos`] — hostile-client helpers for the serve layer's overload
//!   suite: slowloris trickle, mid-request disconnect, silent campers, and
//!   PRNG-driven garbage / near-miss protocol line generators.
//!
//! The crate intentionally has **no** dependencies, not even on other
//! workspace crates, so every crate (including `lasagne-tensor` at the
//! bottom of the stack) can depend on it.

pub mod bench;
pub mod chaos;
pub mod fault;
pub mod gens;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{bench, bench_with, BenchResult};
pub use chaos::{
    drop_mid_request, garbage_line, mutate_line, silent_camper, slow_sender, SlowSendOutcome,
};
pub use fault::{flip_byte, truncate_file, Fault, FaultPlan};
pub use gens::{coo_graph, dense, sym_adj, vec_of, CooGraph, Dense, OneOf, VecGen};
pub use json::{Json, JsonError};
pub use prop::{check, Config, Gen, Just};
pub use rng::{mix64, Rng, SplitMix64};
