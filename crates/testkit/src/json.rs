//! A small JSON value type with an exact-round-trip serializer and a
//! recursive-descent parser — the workspace's replacement for
//! `serde`/`serde_json`.
//!
//! Design points that matter to the stack:
//!
//! * **Numbers are `f64`** and are written with Rust's shortest-round-trip
//!   `Display`, so every finite `f64` (and therefore every `f32` widened to
//!   `f64`, which is exact) survives a write→parse cycle bit-for-bit. The
//!   determinism regression test compares checkpoint *bytes*, which this
//!   serializer keeps stable.
//! * **Objects preserve insertion order** (`Vec<(String, Json)>`, not a
//!   map), so serialization is deterministic and checkpoints diff cleanly.
//! * Non-finite floats serialize as `null`, matching `serde_json`.

use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `usize`, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an array of numbers from `f32`s (each widened exactly).
    pub fn from_f32s<I: IntoIterator<Item = f32>>(values: I) -> Json {
        Json::Arr(values.into_iter().map(|v| Json::Num(v as f64)).collect())
    }

    /// Interpret an array of numbers as `f32`s (narrowing each element).
    pub fn to_f32s(&self) -> Option<Vec<f32>> {
        self.as_arr()?
            .iter()
            .map(|v| v.as_f64().map(|n| n as f32))
            .collect()
    }

    /// Compact serialization.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// anything else after the value is an error).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The i64 fast path below would drop the sign of -0.0.
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        // Integral and exactly representable: write without the ".0" so
        // counts/indices look like integers.
        fmt::Write::write_fmt(out, format_args!("{}", n as i64)).unwrap();
    } else {
        // Rust's shortest-round-trip float formatting.
        fmt::Write::write_fmt(out, format_args!("{n}")).unwrap();
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32)).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos one past the digits; undo the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. The input is a
                    // &str, so slicing exactly the scalar's bytes (length
                    // from the leading byte) is valid UTF-8 — crucially,
                    // never re-validate the whole remaining input per
                    // character, which made long strings quadratic.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .expect("input was a str");
                    out.push(s.chars().next().unwrap());
                    self.pos += len;
                }
            }
        }
    }

    /// Four hex digits starting at `pos`; leaves `pos` after them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad hex in \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(j: &Json) -> Json {
        Json::parse(&j.to_string()).expect("round trip parse")
    }

    #[test]
    fn scalars_round_trip() {
        for j in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e300),
            Json::Str("hello".into()),
            Json::Str("esc \" \\ \n \t ünïcode 🎉".into()),
        ] {
            assert_eq!(round_trip(&j), j, "{j:?}");
        }
    }

    #[test]
    fn every_f32_bit_pattern_we_care_about_round_trips() {
        // Awkward f32s: subnormals, ulp-neighbors, repeating decimals.
        let values = [
            0.1f32,
            -0.0f32,
            -0.30000001f32,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 8.0,
            1.0 + f32::EPSILON,
            3.4028235e38f32,
            -1.1754944e-38f32,
            1.0 / 3.0,
        ];
        let j = Json::from_f32s(values);
        let back = round_trip(&j).to_f32s().unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn f64_shortest_display_round_trips() {
        let mut rng = crate::rng::Rng::seed_from_u64(0);
        for _ in 0..2000 {
            let v = f64::from_bits(rng.next_u64());
            if !v.is_finite() {
                continue;
            }
            let s = Json::Num(v).to_string();
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via '{s}'");
        }
    }

    #[test]
    fn objects_preserve_order_and_nest() {
        let j = Json::Obj(vec![
            ("z".into(), Json::Num(1.0)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::Str("v".into()))])),
        ]);
        let s = j.to_string();
        assert_eq!(s, r#"{"z":1,"a":[null,true],"nested":{"k":"v"}}"#);
        assert_eq!(round_trip(&j), j);
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1.5, 2]}"#).unwrap();
        assert_eq!(j.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(j.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(j.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("a").unwrap().to_f32s().unwrap(), vec![1.5, 2.0]);
        assert!(j.get("missing").is_none());
        assert!(j.get("s").unwrap().as_f64().is_none());
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let j = Json::parse(" \n\t{ \"k\" : [ 1 , -2.5e-3, \"\\u0041\\u00e9\\ud83c\\udf89\" ] } ").unwrap();
        let arr = j.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5e-3));
        assert_eq!(arr[2].as_str(), Some("Aé🎉"));
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"unterminated", "[1] extra", "nul"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.offset <= bad.len(), "{bad}: {e}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let s = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&s).is_err());
    }
}
