//! Deterministic, seedable randomness: splitmix64 for seeding and stream
//! splitting, xoshiro256\*\* as the workhorse generator.
//!
//! xoshiro256\*\* (Blackman & Vigna, 2018) is the same generator family
//! `rand`'s `SmallRng` uses on 64-bit targets: 256 bits of state, period
//! 2^256 − 1, passes BigCrush, and needs only shifts/rotates/multiplies —
//! ideal for a reproducible, dependency-free stack. splitmix64 is the
//! canonical way to expand a 64-bit seed into the full state (it is an
//! equidistributed bijection, so no two seeds collide and a zero state is
//! impossible).

/// The splitmix64 generator: a 64-bit state stepped by a Weyl increment and
/// finalized with an avalanche mix. Used to seed [`Rng`] and derive
/// independent child streams.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One-shot splitmix64 avalanche of a value — handy for deriving per-case
/// seeds from a base seed plus an index.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// xoshiro256\*\* — the workspace's only source of randomness.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Deterministic generator from a 64-bit seed (state filled by
    /// splitmix64, per the xoshiro authors' recommendation).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The raw 256-bit generator state, for serialization (crash-safe
    /// training checkpoints persist it so a resumed run replays the exact
    /// random stream the uninterrupted run would have consumed).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a [`Rng::state`] snapshot. The all-zero
    /// state is a fixed point of xoshiro256\*\* and is rejected.
    pub fn from_state(s: [u64; 4]) -> Rng {
        assert!(s.iter().any(|&w| w != 0), "Rng::from_state: all-zero state");
        Rng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit output, which has the
    /// best statistical quality in the \*\* scrambler).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Split off an independent child stream. The child is seeded through a
    /// splitmix64 avalanche of a fresh output, so parent and child streams
    /// are decorrelated.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(mix64(self.next_u64()))
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `u64` in `[0, n)`. Uses Lemire's multiply-shift with a
    /// rejection step, so the result is unbiased for every `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below: empty range");
        // Lemire 2019: map x·n >> 64; reject the small aliased band.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range_u64: empty range [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range_usize: empty range [{lo}, {hi})");
        lo + self.index(hi - lo)
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng::range_i64: empty range [{lo}, {hi})");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "Rng::range_f32: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "Rng::range_f64: empty range [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard-normal sample via the Box–Muller transform (`u1` kept away
    /// from zero so `ln` stays finite).
    pub fn normal_f32(&mut self) -> f32 {
        let u1 = f32::EPSILON + (1.0 - f32::EPSILON) * self.next_f32();
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order
    /// (partial Fisher–Yates).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "Rng::sample_indices: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range_usize(i, n.max(i + 1));
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // Reference outputs for the all-splitmix64-from-0 seeding: the first
        // outputs must be reproducible forever — checkpoints and the
        // determinism regression test depend on stream stability.
        let mut a = Rng::seed_from_u64(0);
        let mut b = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let again: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.iter().any(|&x| x != 0));
    }

    #[test]
    fn splitmix_is_a_bijection_locally() {
        // Distinct seeds give distinct first outputs for a decent sample.
        let outs: std::collections::HashSet<u64> = (0..1000u64).map(mix64).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = Rng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        let from_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let from_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(from_a, from_b, "restored state must continue the stream");
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn zero_state_is_rejected() {
        let _ = Rng::from_state([0; 4]);
    }

    #[test]
    fn below_is_in_range_and_hits_all_values() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_f32_moments() {
        let mut rng = Rng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f32() as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(3);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal_f32() as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn forked_streams_differ_from_parent() {
        let mut parent = Rng::seed_from_u64(4);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..64).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(xs, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_full_range_possible() {
        let mut rng = Rng::seed_from_u64(6);
        let s = rng.sample_indices(50, 50);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let t = rng.sample_indices(10, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from_u64(7);
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }
}
