//! Deterministic chaos clients for server robustness tests.
//!
//! Every helper here models one hostile client the serve layer must
//! survive (DESIGN.md §12): a slowloris trickling bytes forever, a client
//! that hangs up mid-request, and generators for garbage / mutated
//! protocol lines. They are plain `std::net` blocking calls driven by the
//! workspace [`Rng`](crate::rng::Rng), so a chaos run is replayable from
//! its seed — a failing fuzz case is one `(seed, iteration)` pair away
//! from a unit test.
//!
//! Like the rest of the crate this module depends on `std` alone; the
//! serve crate's chaos suite and the bench soak driver both build on it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::rng::Rng;

/// How a [`slow_sender`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlowSendOutcome {
    /// All bytes were trickled out and the connection was still up.
    Sent,
    /// The server closed (or reset) the connection mid-trickle — e.g. the
    /// idle reaper or the request-line byte cap fired.
    ServerClosed,
}

/// Slowloris: connect and trickle `payload` one byte at a time, sleeping
/// `per_byte` between writes and never completing a line. Returns how far
/// it got and why it stopped. A hardened server must bound what this
/// client can pin (reader memory via the line cap, thread lifetime via the
/// idle reaper) — the assertion belongs to the caller.
pub fn slow_sender(
    addr: &str,
    payload: &[u8],
    per_byte: Duration,
) -> std::io::Result<(usize, SlowSendOutcome)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    for (i, byte) in payload.iter().enumerate() {
        if let Err(e) = stream.write_all(std::slice::from_ref(byte)) {
            return if is_disconnect(&e) {
                Ok((i, SlowSendOutcome::ServerClosed))
            } else {
                Err(e)
            };
        }
        std::thread::sleep(per_byte);
    }
    Ok((payload.len(), SlowSendOutcome::Sent))
}

/// Mid-request disconnect: connect, send a request line *without* its
/// terminating newline, and hang up immediately. The server must treat the
/// torn request as a closed connection — no response owed, no thread or
/// queue slot leaked.
pub fn drop_mid_request(addr: &str, partial: &str) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(partial.as_bytes())?;
    // Dropping the stream here closes the socket with the line unfinished.
    Ok(())
}

/// Hold a connection open, fully silent, for `hold`; returns `true` if the
/// server had already hung up by the end (idle reaping observed via EOF).
pub fn silent_camper(addr: &str, hold: Duration) -> std::io::Result<bool> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(hold))?;
    let mut probe = [0u8; 1];
    // The server sends nothing unprompted, so a clean 0-byte read within
    // the hold window can only mean the reaper closed us.
    match (&stream).read(&mut probe) {
        Ok(0) => Ok(true),
        Ok(_) => Ok(false),
        Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) => {
            Ok(false)
        }
        Err(e) if is_disconnect_kind(e.kind()) => Ok(true),
        Err(e) => Err(e),
    }
}

/// One PRNG garbage line: printable-biased random bytes with no `\n` (the
/// caller owns framing) and at least one non-whitespace byte, so a server
/// that skips blank lines still owes exactly one response.
pub fn garbage_line(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.range_usize(1, max_len.max(2));
    let mut line = String::with_capacity(len);
    for _ in 0..len {
        let c = match rng.index(10) {
            // Mostly JSON-ish punctuation and ASCII so the parser gets
            // deep before failing...
            0..=5 => (rng.range_u64(0x20, 0x7e) as u8) as char,
            6 => *['{', '}', '[', ']', '"', ':', ',']
                .get(rng.index(7))
                .unwrap(),
            // ...with some multi-byte UTF-8 and control bytes mixed in.
            7 => '\u{00e9}',
            8 => '\u{2603}',
            _ => '\u{0001}',
        };
        line.push(c);
    }
    if line.bytes().all(|b| b.is_ascii_whitespace()) {
        line.push('x');
    }
    line
}

/// Mutate one well-formed protocol line into a near-miss: truncate it,
/// flip a byte, splice random bytes in, or double a span. The result never
/// contains `\n` and never becomes whitespace-only.
pub fn mutate_line(rng: &mut Rng, line: &str) -> String {
    let mut bytes: Vec<u8> = line.bytes().collect();
    if bytes.is_empty() {
        return "x".into();
    }
    match rng.index(4) {
        0 => {
            // Truncate: simulate a writer that died mid-line.
            let keep = rng.range_usize(1, bytes.len().max(2));
            bytes.truncate(keep);
        }
        1 => {
            // Flip one byte to a random printable.
            let at = rng.index(bytes.len());
            bytes[at] = rng.range_u64(0x20, 0x7e) as u8;
        }
        2 => {
            // Splice a short random run into the middle.
            let at = rng.index(bytes.len() + 1);
            let n = rng.range_usize(1, 8);
            let run: Vec<u8> = (0..n).map(|_| rng.range_u64(0x20, 0x7e) as u8).collect();
            bytes.splice(at..at, run);
        }
        _ => {
            // Duplicate a span: `{"op":"op":"predict"...`.
            let a = rng.index(bytes.len());
            let b = rng.range_usize(a, bytes.len());
            let span: Vec<u8> = bytes[a..b.max(a + 1).min(bytes.len())].to_vec();
            bytes.splice(a..a, span);
        }
    }
    bytes.retain(|&b| b != b'\n');
    let out = String::from_utf8_lossy(&bytes).into_owned();
    if out.bytes().all(|b| b.is_ascii_whitespace()) {
        "x".into()
    } else {
        out
    }
}

fn is_disconnect(e: &std::io::Error) -> bool {
    is_disconnect_kind(e.kind())
}

fn is_disconnect_kind(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::NotConnected
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_lines_are_framed_and_nonblank() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..500 {
            let line = garbage_line(&mut rng, 64);
            assert!(!line.contains('\n'));
            assert!(line.bytes().any(|b| !b.is_ascii_whitespace()));
        }
    }

    #[test]
    fn mutations_are_framed_and_nonblank() {
        let mut rng = Rng::seed_from_u64(8);
        let base = r#"{"op":"predict","node":3}"#;
        for _ in 0..500 {
            let line = mutate_line(&mut rng, base);
            assert!(!line.contains('\n'));
            assert!(line.bytes().any(|b| !b.is_ascii_whitespace()));
        }
    }

    #[test]
    fn mutations_are_deterministic_per_seed() {
        let base = r#"{"op":"top_k","node":1,"k":2}"#;
        let run = |seed: u64| -> Vec<String> {
            let mut rng = Rng::seed_from_u64(seed);
            (0..64).map(|_| mutate_line(&mut rng, base)).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
