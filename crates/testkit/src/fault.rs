//! Deterministic fault injection for robustness tests.
//!
//! A [`FaultPlan`] is a declarative schedule of failures a test wants the
//! training stack to survive: poison a gradient at a chosen optimization
//! step, or simulate an abrupt process death at the top of a chosen epoch.
//! The plan is plain data — the trainer queries it at the matching points
//! of its loop — so the same plan replayed against the same seed produces
//! the same failure, every time.
//!
//! File-corruption helpers ([`flip_byte`], [`truncate_file`]) mutate saved
//! checkpoints on disk the way real crashes and bit rot do, driven by the
//! testkit PRNG so a failing case is reproducible from its seed.

use std::io;
use std::path::Path;

use crate::rng::Rng;

/// One scheduled failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Overwrite one gradient entry with NaN after the backward pass of the
    /// given *global* optimization step (counting every attempt, including
    /// retries, from 0).
    GradNan {
        /// Global step index at which the NaN appears.
        step: usize,
    },
    /// Simulate the process dying at the *top* of the given epoch: the
    /// trainer returns a `Crashed` error before doing any work for that
    /// epoch, exactly as if it had been SIGKILLed between epochs.
    CrashAtEpoch {
        /// Epoch index whose start is never reached.
        epoch: usize,
    },
}

/// A schedule of [`Fault`]s for one training run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a NaN-gradient injection at global step `step`.
    pub fn with_grad_nan_at(mut self, step: usize) -> FaultPlan {
        self.faults.push(Fault::GradNan { step });
        self
    }

    /// Add a simulated crash at the top of `epoch`.
    pub fn with_crash_at_epoch(mut self, epoch: usize) -> FaultPlan {
        self.faults.push(Fault::CrashAtEpoch { epoch });
        self
    }

    /// A randomized single-fault plan: with equal probability a NaN
    /// gradient at a uniform step in `[0, max_steps)` or a crash at a
    /// uniform epoch in `[0, max_epochs)`. Deterministic in `rng`.
    pub fn random(rng: &mut Rng, max_steps: usize, max_epochs: usize) -> FaultPlan {
        assert!(max_steps > 0 && max_epochs > 0, "FaultPlan::random: empty range");
        if rng.bernoulli(0.5) {
            FaultPlan::none().with_grad_nan_at(rng.index(max_steps))
        } else {
            FaultPlan::none().with_crash_at_epoch(rng.index(max_epochs))
        }
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Should a NaN be injected into the gradients of global step `step`?
    pub fn grad_nan_at(&self, step: usize) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::GradNan { step: s } if *s == step))
    }

    /// Should the process "die" at the top of `epoch`?
    pub fn crash_at(&self, epoch: usize) -> bool {
        self.faults.iter().any(|f| matches!(f, Fault::CrashAtEpoch { epoch: e } if *e == epoch))
    }

    /// The scheduled faults, in insertion order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// Flip one random byte of the file at `path` (XOR with a random non-zero
/// mask at a PRNG-chosen offset) and return `(offset, old, new)`. Models a
/// single-bit-rot / torn-write corruption of a checkpoint.
pub fn flip_byte(path: &Path, rng: &mut Rng) -> io::Result<(usize, u8, u8)> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "flip_byte: empty file"));
    }
    let offset = rng.index(bytes.len());
    let mask = 1u8 << rng.index(8);
    let old = bytes[offset];
    bytes[offset] ^= mask;
    let new = bytes[offset];
    std::fs::write(path, &bytes)?;
    Ok((offset, old, new))
}

/// Truncate the file at `path` to `fraction` of its length (a torn write:
/// the process died mid-`write`). `fraction` is clamped to `[0, 1]`.
pub fn truncate_file(path: &Path, fraction: f64) -> io::Result<u64> {
    let len = std::fs::metadata(path)?.len();
    let keep = ((len as f64) * fraction.clamp(0.0, 1.0)) as u64;
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep)?;
    Ok(keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lasagne-fault-{name}-{}", std::process::id()))
    }

    #[test]
    fn plan_queries_match_schedule() {
        let p = FaultPlan::none().with_grad_nan_at(3).with_crash_at_epoch(5);
        assert!(p.grad_nan_at(3) && !p.grad_nan_at(2) && !p.grad_nan_at(4));
        assert!(p.crash_at(5) && !p.crash_at(3));
        assert_eq!(p.faults().len(), 2);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn random_plans_are_deterministic_in_the_seed() {
        let a = FaultPlan::random(&mut Rng::seed_from_u64(9), 40, 20);
        let b = FaultPlan::random(&mut Rng::seed_from_u64(9), 40, 20);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 1);
    }

    #[test]
    fn flip_byte_changes_exactly_one_byte() {
        let path = temp("flip");
        std::fs::write(&path, b"hello checkpoint").unwrap();
        let (off, old, new) = flip_byte(&path, &mut Rng::seed_from_u64(1)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_ne!(old, new);
        assert_eq!(bytes[off], new);
        assert_eq!(bytes.len(), 16);
        let diff = b"hello checkpoint"
            .iter()
            .zip(&bytes)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let path = temp("trunc");
        std::fs::write(&path, vec![7u8; 100]).unwrap();
        let kept = truncate_file(&path, 0.3).unwrap();
        assert_eq!(kept, 30);
        assert_eq!(std::fs::read(&path).unwrap().len(), 30);
        let _ = std::fs::remove_file(path);
    }
}
