//! A minimal property-based testing harness.
//!
//! The shape is the familiar one: a [`Gen`] produces random values, a
//! property returns `Ok(())` or an error message, and [`check`] runs the
//! property over many generated cases. On failure the harness
//!
//! 1. prints the **case seed** so the exact failing input can be replayed
//!    with `LASAGNE_PROP_SEED=<seed> cargo test <name>`,
//! 2. **shrinks** the input via [`Gen::shrink`] (integers and sizes shrink
//!    toward their lower bound, vectors shrink by dropping elements) and
//!    reports the minimal counterexample found.
//!
//! The [`prop_check!`] macro wraps all of this into a `#[test]` with
//! `name in generator` bindings, mirroring the `proptest!` surface the
//! workspace's suites were originally written against:
//!
//! ```
//! use lasagne_testkit::{prop_check, prop_assert};
//!
//! prop_check! {
//!     cases = 64,
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert!(a + b == b + a, "a={a} b={b}");
//!     }
//! }
//! ```

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use crate::rng::{mix64, Rng};

/// A generator of random test inputs with optional shrinking.
pub trait Gen {
    /// The generated value. `Debug` so counterexamples can be printed,
    /// `Clone` so the shrinker can hold candidates.
    type Value: Clone + std::fmt::Debug;

    /// Produce one value from the generator.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate "smaller" versions of `v`, best candidates first. The
    /// default is no shrinking (used by float ranges, where smaller inputs
    /// rarely clarify a failure).
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Harness configuration for one property.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases (the ported suites use ≥ 64; the default
    /// matches proptest's 256).
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it. Overridden by the
    /// `LASAGNE_PROP_SEED` environment variable for replay.
    pub seed: u64,
    /// Upper bound on accepted shrink steps before reporting.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, seed: 0x1a5a_9e5e_ed00_0000, max_shrink_steps: 512 }
    }
}

impl Config {
    /// Config with a specific case count and default everything else.
    pub fn cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that suppresses printing while
/// the harness is intentionally provoking panics during shrinking. Other
/// threads / tests keep the previous hook behavior.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Run `prop` on `value`, converting panics into `Err` so the harness can
/// report the seed and shrink even when the failure is an `unwrap`/index
/// panic inside the property body.
fn run_case<V, P>(prop: &P, value: &V) -> Result<(), String>
where
    P: Fn(&V) -> Result<(), String>,
{
    install_quiet_hook();
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panicked with a non-string payload".to_string());
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Greedily walk shrink candidates while they keep failing; returns the
/// minimal failing value, its error, and the number of accepted steps.
fn shrink_failure<G, P>(
    gen: &G,
    prop: &P,
    mut value: G::Value,
    mut error: String,
    max_steps: u32,
) -> (G::Value, String, u32)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in gen.shrink(&value) {
            if let Err(e) = run_case(prop, &candidate) {
                value = candidate;
                error = e;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, error, steps)
}

/// Run `prop` over `cfg.cases` values drawn from `gen`. Panics with the
/// failing case seed and the shrunk counterexample on the first failure.
///
/// Set `LASAGNE_PROP_SEED=<decimal or 0xhex>` to replay a single reported
/// case instead of the full run.
pub fn check<G, P>(name: &str, cfg: &Config, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    let replay = std::env::var("LASAGNE_PROP_SEED").ok().and_then(|s| {
        let s = s.trim();
        match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse::<u64>().ok(),
        }
    });

    // Fold the property name into the base seed so distinct properties
    // explore distinct streams even with the same config.
    let base = cfg.seed ^ fnv1a(name.as_bytes());

    let case_seeds: Vec<(u32, u64)> = match replay {
        Some(seed) => vec![(0, seed)],
        None => (0..cfg.cases)
            .map(|case| (case, mix64(base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)))))
            .collect(),
    };

    for (case, case_seed) in case_seeds {
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        if let Err(error) = run_case(&prop, &value) {
            let (shrunk, final_error, steps) =
                shrink_failure(gen, &prop, value, error, cfg.max_shrink_steps);
            panic!(
                "property '{name}' failed at case {case}/{total}\n  \
                 replay: LASAGNE_PROP_SEED={case_seed} cargo test {name}\n  \
                 counterexample (after {steps} shrink steps): {shrunk:?}\n  \
                 error: {final_error}",
                total = cfg.cases,
            );
        }
    }
}

/// FNV-1a over bytes; stable across runs (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Declare a `#[test]` property. Syntax:
///
/// ```text
/// prop_check! {
///     cases = 256,                       // optional, defaults to 256
///     fn name(x in gen_expr, y in gen_expr) { ...body using prop_assert!... }
/// }
/// ```
///
/// Each `gen_expr` is any [`Gen`] (scalar ranges like `0u64..100` and
/// `1usize..8` implement it directly; see [`crate::gens`] for vectors,
/// dense matrices and graphs). The body runs once per case with the bound
/// variables and must flow off the end on success; use
/// [`prop_assert!`](crate::prop_assert) /
/// [`prop_assert_eq!`](crate::prop_assert_eq) to fail.
#[macro_export]
macro_rules! prop_check {
    (cases = $cases:expr, fn $name:ident($($var:ident in $gen:expr),+ $(,)?) $body:block) => {
        #[test]
        fn $name() {
            let cfg = $crate::prop::Config::cases($cases);
            let gen = ($($gen,)+);
            $crate::prop::check(stringify!($name), &cfg, &gen, |value| {
                let ($($var,)+) = value.clone();
                $body
                Ok(())
            });
        }
    };
    (fn $name:ident($($var:ident in $gen:expr),+ $(,)?) $body:block) => {
        $crate::prop_check! { cases = 256, fn $name($($var in $gen),+) $body }
    };
}

/// Fail the enclosing [`prop_check!`] body when `cond` is false. An
/// optional trailing `format!`-style message is appended to the report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Fail the enclosing [`prop_check!`] body when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            ));
        }
    }};
}

// ---- Gen implementations for scalar ranges and tuples ----

/// Shrink an integer toward `lo`: the lower bound itself, the midpoint, and
/// the predecessor — enough to binary-search a minimal failing size.
fn shrink_int(lo: u64, v: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if v > lo {
        out.push(lo);
        let mid = lo + (v - lo) / 2;
        if mid != lo && mid != v {
            out.push(mid);
        }
        out.push(v - 1);
    }
    out.dedup();
    out
}

impl Gen for std::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut Rng) -> u64 {
        rng.range_u64(self.start, self.end)
    }
    fn shrink(&self, v: &u64) -> Vec<u64> {
        shrink_int(self.start, *v)
    }
}

impl Gen for std::ops::Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut Rng) -> u32 {
        rng.range_u64(self.start as u64, self.end as u64) as u32
    }
    fn shrink(&self, v: &u32) -> Vec<u32> {
        shrink_int(self.start as u64, *v as u64).into_iter().map(|x| x as u32).collect()
    }
}

impl Gen for std::ops::Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut Rng) -> usize {
        rng.range_usize(self.start, self.end)
    }
    fn shrink(&self, v: &usize) -> Vec<usize> {
        shrink_int(self.start as u64, *v as u64).into_iter().map(|x| x as usize).collect()
    }
}

impl Gen for std::ops::Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut Rng) -> i64 {
        rng.range_i64(self.start, self.end)
    }
    fn shrink(&self, v: &i64) -> Vec<i64> {
        // Shrink toward 0 when the range spans it, else toward the start.
        let anchor = if self.start <= 0 && 0 < self.end { 0 } else { self.start };
        let mut out = Vec::new();
        if *v != anchor {
            out.push(anchor);
            let mid = anchor + (*v - anchor) / 2;
            if mid != anchor && mid != *v {
                out.push(mid);
            }
        }
        out
    }
}

impl Gen for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut Rng) -> f32 {
        rng.range_f32(self.start, self.end)
    }
}

impl Gen for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

/// A constant generator (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Gen for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_gen {
    ($($G:ident/$v:ident/$i:tt),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);
            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&v.$i) {
                        let mut next = v.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A/a/0);
tuple_gen!(A/a/0, B/b/1);
tuple_gen!(A/a/0, B/b/1, C/c/2);
tuple_gen!(A/a/0, B/b/1, C/c/2, D/d/3);
tuple_gen!(A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
tuple_gen!(A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = std::cell::Cell::new(0u32);
        check("always_ok", &Config::cases(64), &(0u64..100), |_| {
            ran.set(ran.get() + 1);
            Ok(())
        });
        assert_eq!(ran.get(), 64);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let err = std::panic::catch_unwind(|| {
            check("gt_ten_fails", &Config::cases(256), &(0u64..1000), |&v| {
                if v >= 10 {
                    Err(format!("{v} >= 10"))
                } else {
                    Ok(())
                }
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("LASAGNE_PROP_SEED="), "{msg}");
        // Integer shrinking must land exactly on the boundary.
        assert!(msg.contains("counterexample"), "{msg}");
        assert!(msg.contains(": 10"), "shrunk to minimum: {msg}");
    }

    #[test]
    fn panics_inside_properties_are_reported_not_lost() {
        let err = std::panic::catch_unwind(|| {
            check("panics", &Config::cases(8), &(0u64..4), |&v| {
                if v == 0 {
                    Ok(())
                } else {
                    panic!("boom at {v}");
                }
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("panicked: boom"), "{msg}");
    }

    #[test]
    fn tuple_shrinking_shrinks_each_component() {
        let gen = (0u64..100, 0usize..50);
        let shrunk = gen.shrink(&(40, 20));
        assert!(shrunk.iter().any(|&(a, b)| a < 40 && b == 20));
        assert!(shrunk.iter().any(|&(a, b)| a == 40 && b < 20));
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let collect = |_: ()| {
            check("det", &Config::cases(16), &(0u64..1_000_000), |&v| {
                // Property bodies observe values through side channels in
                // this meta-test only.
                VALS.with(|c| c.borrow_mut().push(v));
                Ok(())
            });
            VALS.with(|c| std::mem::take(&mut *c.borrow_mut()))
        };
        thread_local! {
            static VALS: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
        }
        let a = collect(());
        let b = collect(());
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }

    prop_check! {
        cases = 64,
        fn macro_surface_works(a in 0u64..100, b in 1usize..8) {
            prop_assert!(a < 100);
            prop_assert_eq!(b.min(8), b);
        }
    }
}
