//! A wall-clock micro-benchmark timer: warmup, then N timed samples,
//! reported as median (with min/mean for context). Replaces `criterion`
//! for the `lasagne-bench` targets, which are plain `harness = false`
//! binaries.
//!
//! Median-of-N is robust to the occasional scheduler hiccup without
//! criterion's bootstrap machinery; for the kernel-vs-kernel comparisons
//! the bench suite makes (GCN vs Lasagne per-epoch time, aggregator
//! forward cost) that is plenty.

use std::time::{Duration, Instant};

/// Timing summary of one benchmarked closure.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Timed samples taken (after warmup).
    pub samples: usize,
    /// Median sample duration.
    pub median: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Mean sample duration.
    pub mean: Duration,
}

impl BenchResult {
    /// Median in seconds.
    pub fn median_seconds(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// `"1.234 ms"`-style human formatting.
fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<44} median {:>12}  (min {}, mean {}, {} samples)",
            self.name,
            human(self.median),
            human(self.min),
            human(self.mean),
            self.samples
        )
    }
}

/// Benchmark `f`: `warmup` untimed runs, then `samples` timed runs.
pub fn bench_with<F: FnMut()>(name: &str, warmup: usize, samples: usize, mut f: F) -> BenchResult {
    assert!(samples >= 1, "bench_with: need at least one sample");
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = if samples % 2 == 1 {
        times[samples / 2]
    } else {
        (times[samples / 2 - 1] + times[samples / 2]) / 2
    };
    let mean = times.iter().sum::<Duration>() / samples as u32;
    BenchResult {
        name: name.to_string(),
        samples,
        median,
        min: times[0],
        mean,
    }
}

/// [`bench_with`] with the default 3 warmup runs and 15 samples, printing
/// the result line to stdout (the bench binaries' usual flow).
pub fn bench<F: FnMut()>(name: &str, f: F) -> BenchResult {
    let r = bench_with(name, 3, 15, f);
    println!("{r}");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_min_are_ordered() {
        let mut n = 0u64;
        let r = bench_with("spin", 1, 9, || {
            for i in 0..10_000u64 {
                n = n.wrapping_add(i * i);
            }
        });
        assert!(r.min <= r.median);
        assert!(r.median > Duration::ZERO);
        assert_eq!(r.samples, 9);
        assert!(n > 0);
    }

    #[test]
    fn even_sample_counts_average_the_middle_pair() {
        let r = bench_with("noop", 0, 4, || {});
        assert_eq!(r.samples, 4);
        assert!(r.mean >= r.min);
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(human(Duration::from_nanos(120)), "120 ns");
        assert_eq!(human(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(human(Duration::from_secs(2)), "2.000 s");
        let r = BenchResult {
            name: "x".into(),
            samples: 3,
            median: Duration::from_millis(5),
            min: Duration::from_millis(4),
            mean: Duration::from_millis(6),
        };
        assert!(r.to_string().contains("median"));
    }
}
