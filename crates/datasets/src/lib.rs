//! Synthetic equivalents of the paper's eleven evaluation datasets
//! (Table 2), generated deterministically from a seed.
//!
//! Real Planetoid/GraphSAINT/Tencent files are not available offline, so
//! each dataset is replaced by a degree-corrected SBM (or, for Tencent, a
//! bipartite user–item graph) whose statistics follow Table 2, scaled where
//! noted to fit a single-core CPU budget (every scaling is recorded in
//! [`DatasetSpec`] next to the paper's original numbers — see
//! `DatasetSpec::paper_*` fields and DESIGN.md §3).
//!
//! The feature generator plants the phenomenon the paper's contribution
//! feeds on: per-node feature noise grows as degree shrinks, so peripheral
//! nodes *need* deep aggregation, while hubs (whose absolute number of
//! cross-community edges is large in a DC-SBM) over-smooth under depth.
//!
//! # Example
//! ```
//! use lasagne_datasets::{Dataset, DatasetId};
//! let ds = Dataset::generate(DatasetId::Cora, 0);
//! assert_eq!(ds.graph.num_nodes(), 2708);
//! assert_eq!(ds.split.train.len(), 140);
//! assert_eq!(ds.num_classes, 7);
//! ```

mod build;
mod features;
mod rec;
mod spec;
mod splits;

pub use build::Dataset;
pub use features::{generate_features, FeatureConfig};
pub use rec::{dot_score, sort_ranked, RecConfig, RecDataset, RecEval};
pub use spec::{spec, DatasetId, DatasetSpec, Task};
pub use splits::{stratified_split, Split};
