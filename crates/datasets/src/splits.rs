//! Train/validation/test splits.

use lasagne_tensor::TensorRng;

/// Disjoint node-index sets for training, validation and testing.
#[derive(Clone, Debug, Default)]
pub struct Split {
    /// Labeled training nodes.
    pub train: Vec<usize>,
    /// Early-stopping validation nodes.
    pub val: Vec<usize>,
    /// Held-out test nodes.
    pub test: Vec<usize>,
}

impl Split {
    /// Sanity check: all three sets are pairwise disjoint and within bounds.
    pub fn validate(&self, n: usize) {
        let mut seen = vec![0u8; n];
        for (&mark, set) in [(1u8, &self.train), (2, &self.val), (4, &self.test)]
            .iter()
            .map(|(m, s)| (m, *s))
        {
            for &i in set {
                assert!(i < n, "split index {i} out of range {n}");
                assert_eq!(seen[i], 0, "node {i} appears in two split sets");
                seen[i] = mark;
            }
        }
    }

    /// Label rate: train size over candidate-pool size.
    pub fn label_rate(&self, pool: usize) -> f64 {
        self.train.len() as f64 / pool as f64
    }
}

/// Planetoid-style stratified split over `candidates` (usually all nodes;
/// for the bipartite Tencent graph, item nodes only):
///
/// * `train_total / classes` training nodes drawn per class (stratified, as
///   in the fixed Planetoid splits the paper uses);
/// * `val` then `test` nodes drawn randomly from the remainder.
pub fn stratified_split(
    candidates: &[usize],
    labels: &[usize],
    classes: usize,
    train_total: usize,
    val: usize,
    test: usize,
    rng: &mut TensorRng,
) -> Split {
    assert!(
        train_total + val + test <= candidates.len(),
        "split sizes {train_total}+{val}+{test} exceed pool {}",
        candidates.len()
    );
    let per_class = (train_total / classes).max(1);

    let mut shuffled: Vec<usize> = candidates.to_vec();
    rng.shuffle(&mut shuffled);

    let mut train = Vec::with_capacity(train_total);
    let mut counts = vec![0usize; classes];
    let mut rest = Vec::with_capacity(shuffled.len());
    for &v in &shuffled {
        let c = labels[v];
        if train.len() < train_total && counts[c] < per_class {
            counts[c] += 1;
            train.push(v);
        } else {
            rest.push(v);
        }
    }
    // Top up if some classes were too small to deliver their quota.
    let mut extra = Vec::new();
    for &v in &rest {
        if train.len() >= train_total {
            extra.push(v);
        } else {
            train.push(v);
        }
    }
    let val_set: Vec<usize> = extra.iter().take(val).copied().collect();
    let test_set: Vec<usize> = extra.iter().skip(val).take(test).copied().collect();
    assert_eq!(train.len(), train_total, "stratified_split: underfilled train");
    Split {
        train,
        val: val_set,
        test: test_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn sizes_and_disjointness() {
        let n = 500;
        let l = labels(n, 5);
        let cand: Vec<usize> = (0..n).collect();
        let mut rng = TensorRng::seed_from_u64(0);
        let s = stratified_split(&cand, &l, 5, 100, 150, 200, &mut rng);
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.val.len(), 150);
        assert_eq!(s.test.len(), 200);
        s.validate(n);
    }

    #[test]
    fn train_is_class_balanced() {
        let n = 600;
        let l = labels(n, 6);
        let cand: Vec<usize> = (0..n).collect();
        let mut rng = TensorRng::seed_from_u64(1);
        let s = stratified_split(&cand, &l, 6, 120, 100, 100, &mut rng);
        let mut counts = vec![0usize; 6];
        for &v in &s.train {
            counts[l[v]] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "counts {counts:?}");
    }

    #[test]
    fn split_respects_candidate_subset() {
        // Only even nodes are candidates (bipartite item-only splits).
        let n = 400;
        let l = labels(n, 4);
        let cand: Vec<usize> = (0..n).filter(|v| v % 2 == 0).collect();
        let mut rng = TensorRng::seed_from_u64(2);
        let s = stratified_split(&cand, &l, 4, 40, 40, 40, &mut rng);
        for set in [&s.train, &s.val, &s.test] {
            assert!(set.iter().all(|&v| v % 2 == 0));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let n = 300;
        let l = labels(n, 3);
        let cand: Vec<usize> = (0..n).collect();
        let a = stratified_split(&cand, &l, 3, 30, 50, 50, &mut TensorRng::seed_from_u64(9));
        let b = stratified_split(&cand, &l, 3, 30, 50, 50, &mut TensorRng::seed_from_u64(9));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn label_rate_reported() {
        let s = Split {
            train: vec![0, 1],
            val: vec![2],
            test: vec![3],
        };
        assert!((s.label_rate(100) - 0.02).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed pool")]
    fn oversized_split_rejected() {
        let l = labels(10, 2);
        let cand: Vec<usize> = (0..10).collect();
        let mut rng = TensorRng::seed_from_u64(3);
        stratified_split(&cand, &l, 2, 5, 5, 5, &mut rng);
    }

    #[test]
    #[should_panic(expected = "two split sets")]
    fn validate_catches_overlap() {
        let s = Split {
            train: vec![1],
            val: vec![1],
            test: vec![],
        };
        s.validate(5);
    }
}
