//! Dataset assembly: graph generation + features + splits, per spec.

use lasagne_graph::generators::{bipartite_user_item, dc_sbm, BipartiteConfig, DcSbmConfig};
use lasagne_graph::Graph;
use lasagne_tensor::{Tensor, TensorRng};

use crate::features::{generate_features, FeatureConfig};
use crate::spec::{spec, DatasetId, DatasetSpec};
use crate::splits::{stratified_split, Split};

/// A fully-materialized dataset: graph, features, labels and splits.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The generation recipe (includes the paper's original statistics).
    pub spec: DatasetSpec,
    /// The graph.
    pub graph: Graph,
    /// `N×M` node features.
    pub features: Tensor,
    /// Class label per node (user nodes of the bipartite dataset carry a
    /// placeholder 0 and never appear in any split).
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// Train/val/test node indices.
    pub split: Split,
    /// The nodes splits are drawn from (all nodes, except Tencent where
    /// only item nodes are labeled).
    pub label_pool: Vec<usize>,
}

/// The training-time view of an inductive dataset: only the subgraph induced
/// by the training nodes is visible (GraphSAINT/GraphSAGE convention, used
/// for Flickr and Reddit in Table 4).
#[derive(Clone, Debug)]
pub struct InductiveView {
    /// Induced training subgraph (nodes renumbered).
    pub graph: Graph,
    /// Features of the training nodes.
    pub features: Tensor,
    /// Labels of the training nodes.
    pub labels: Vec<usize>,
    /// Map from local ids back to full-graph ids.
    pub original_ids: Vec<usize>,
}

impl Dataset {
    /// Deterministically generate the dataset for `id` from a seed.
    pub fn generate(id: DatasetId, seed: u64) -> Dataset {
        let s = spec(id);
        let mut rng = TensorRng::seed_from_u64(seed ^ fnv(s.name));
        match id {
            DatasetId::Tencent => build_bipartite(s, &mut rng),
            _ => build_dc_sbm(s, &mut rng),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// A copy with the training set resampled to `per_class` labeled nodes
    /// per class (Table 8's label-rate sweep); val/test are redrawn from the
    /// remainder with the original sizes.
    pub fn with_train_per_class(&self, per_class: usize, seed: u64) -> Dataset {
        let mut rng = TensorRng::seed_from_u64(seed);
        let split = stratified_split(
            &self.label_pool,
            &self.labels,
            self.num_classes,
            per_class * self.num_classes,
            self.split.val.len(),
            self.split.test.len(),
            &mut rng,
        );
        Dataset { split, ..self.clone() }
    }

    /// Training-subgraph view for inductive training.
    pub fn inductive_train_view(&self) -> InductiveView {
        let ids = self.split.train.clone();
        let graph = self.graph.induced_subgraph(&ids);
        let features = self.features.gather_rows(&ids);
        let labels: Vec<usize> = ids.iter().map(|&v| self.labels[v]).collect();
        InductiveView {
            graph,
            features,
            labels,
            original_ids: ids,
        }
    }

    /// Majority-class accuracy on the test set — the floor every model must
    /// beat.
    pub fn majority_baseline(&self) -> f64 {
        let mut counts = vec![0usize; self.num_classes];
        for &v in &self.split.train {
            counts[self.labels[v]] += 1;
        }
        let major = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(c, _)| c)
            .unwrap_or(0);
        let hits = self
            .split
            .test
            .iter()
            .filter(|&&v| self.labels[v] == major)
            .count();
        hits as f64 / self.split.test.len().max(1) as f64
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn build_dc_sbm(s: DatasetSpec, rng: &mut TensorRng) -> Dataset {
    let (graph, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: s.nodes,
            classes: s.classes,
            avg_degree: s.avg_degree,
            homophily: s.homophily,
            power_exponent: s.power_exponent,
            max_weight_ratio: 100.0,
        },
        rng,
    );
    let features = generate_features(
        &graph,
        &labels,
        s.classes,
        &FeatureConfig {
            dim: s.features,
            signal: 1.0,
            noise_scale: s.noise_scale,
            degree_noise_exponent: s.degree_noise_exponent,
            mask_base: s.mask_base,
        },
        rng,
    );
    let pool: Vec<usize> = (0..s.nodes).collect();
    let split = stratified_split(&pool, &labels, s.classes, s.train, s.val, s.test, rng);
    split.validate(s.nodes);
    Dataset {
        num_classes: s.classes,
        spec: s,
        graph,
        features,
        labels,
        split,
        label_pool: pool,
    }
}

/// The Tencent substitute: a bipartite user–video graph where item features
/// get *noisier with popularity* — hot videos are watched across user
/// preference clusters, so their raw features (and any locality-blind
/// aggregation of them) are nearly class-uninformative. This is the paper's
/// own explanation of why node-awareness matters on this dataset (§5.2.1).
fn build_bipartite(s: DatasetSpec, rng: &mut TensorRng) -> Dataset {
    // 60% items, 40% users (the paper's graph: 57k videos / 43k users).
    let items = s.nodes * 6 / 10;
    let users = s.nodes - items;
    let b = bipartite_user_item(
        &BipartiteConfig {
            items,
            users,
            classes: s.classes,
            avg_user_degree: s.avg_degree,
            popularity_exponent: s.power_exponent,
            user_focus: s.homophily,
            time_buckets: 8,
        },
        rng,
    );
    let n = b.graph.num_nodes();

    // Class centroids shared by items and the users that prefer them.
    let per_coord = 1.0 / (s.features as f32).sqrt();
    let centroids = rng.normal_tensor(s.classes, s.features, 0.0, per_coord);
    let noise_per_coord = s.noise_scale / (s.features as f32).sqrt();
    let avg_item_deg = (0..items).map(|i| b.graph.degree(i)).sum::<usize>() as f32
        / items.max(1) as f32;

    let mut features = Tensor::zeros(n, s.features);
    let mut labels = vec![0usize; n];
    for i in 0..items {
        labels[i] = b.item_labels[i];
        // Popularity-dependent noise: hot items are feature-ambiguous.
        let deg = b.graph.degree(i).max(1) as f32;
        let mult = (deg / avg_item_deg.max(1.0))
            .powf(s.degree_noise_exponent)
            .clamp(0.5, 4.0);
        let sigma = noise_per_coord * mult;
        for (v, &mu) in features.row_mut(i).iter_mut().zip(centroids.row(labels[i])) {
            *v = mu + sigma * rng.normal();
        }
    }
    for (u, &pref) in b.user_prefs.iter().enumerate() {
        let node = items + u;
        labels[node] = pref; // placeholder; user nodes never enter splits
        let sigma = noise_per_coord * 1.5;
        for (v, &mu) in features.row_mut(node).iter_mut().zip(centroids.row(pref)) {
            *v = mu + sigma * rng.normal();
        }
    }

    let pool: Vec<usize> = (0..items).collect();
    let split = stratified_split(&pool, &labels, s.classes, s.train, s.val, s.test, rng);
    split.validate(n);
    Dataset {
        num_classes: s.classes,
        spec: s,
        graph: b.graph,
        features,
        labels,
        split,
        label_pool: pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cora_matches_table_2_exactly() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        assert_eq!(ds.num_nodes(), 2708);
        assert_eq!(ds.num_classes, 7);
        assert_eq!(ds.split.train.len(), 140);
        assert_eq!(ds.split.val.len(), 500);
        assert_eq!(ds.split.test.len(), 1000);
        // Target degree ≈ Table 2's 2·5429/2708 ≈ 4.
        assert!((ds.graph.average_degree() - 4.0).abs() < 0.8);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::generate(DatasetId::Citeseer, 3);
        let b = Dataset::generate(DatasetId::Citeseer, 3);
        let c = Dataset::generate(DatasetId::Citeseer, 4);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.split.train, b.split.train);
        assert!(a.features.approx_eq(&b.features, 0.0));
        assert_ne!(a.split.train, c.split.train);
    }

    #[test]
    fn different_datasets_differ_under_same_seed() {
        let a = Dataset::generate(DatasetId::Cora, 0);
        let b = Dataset::generate(DatasetId::Citeseer, 0);
        assert_ne!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn homophily_is_planted() {
        let ds = Dataset::generate(DatasetId::Cora, 1);
        let h = ds.graph.edge_homophily(&ds.labels);
        assert!(h > 0.8, "homophily {h}");
    }

    #[test]
    fn tencent_is_bipartite_with_item_only_splits() {
        let ds = Dataset::generate(DatasetId::Tencent, 0);
        let items = ds.label_pool.len();
        assert_eq!(items, 6000);
        for set in [&ds.split.train, &ds.split.val, &ds.split.test] {
            assert!(set.iter().all(|&v| v < items), "split leaks user nodes");
        }
        for &(u, v) in ds.graph.edges() {
            let iu = (u as usize) < items;
            let iv = (v as usize) < items;
            assert!(iu != iv, "edge ({u},{v}) not item–user");
        }
    }

    #[test]
    fn label_rate_resampling() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        let low = ds.with_train_per_class(5, 7);
        assert_eq!(low.split.train.len(), 35);
        assert_eq!(low.split.val.len(), 500);
        low.split.validate(low.num_nodes());
        // 5 per class exactly.
        let mut counts = vec![0usize; 7];
        for &v in &low.split.train {
            counts[low.labels[v]] += 1;
        }
        assert!(counts.iter().all(|&c| c == 5));
    }

    #[test]
    fn inductive_view_is_train_only() {
        let ds = Dataset::generate(DatasetId::Flickr, 0);
        let view = ds.inductive_train_view();
        assert_eq!(view.graph.num_nodes(), ds.split.train.len());
        assert_eq!(view.features.rows(), view.labels.len());
        // Labels survive the renumbering.
        for (local, &orig) in view.original_ids.iter().enumerate() {
            assert_eq!(view.labels[local], ds.labels[orig]);
        }
    }

    #[test]
    fn majority_baseline_is_low_on_balanced_data() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        let base = ds.majority_baseline();
        assert!(base < 0.3, "majority baseline {base} suspiciously high");
    }
}
