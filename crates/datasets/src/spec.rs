//! The dataset registry: Table 2 of the paper, with the scalings this
//! reproduction applies (single-core CPU budget).

/// Transductive vs inductive node classification (Table 2's "Task" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// The whole graph (including test nodes) is visible during training;
    /// only training labels are.
    Transductive,
    /// Training sees only the subgraph induced by the training nodes;
    /// evaluation runs on the full graph.
    Inductive,
}

/// Identifier of one of the 11 evaluation datasets. Serializes through its
/// canonical [`name`](DatasetId::name) / [`FromStr`](std::str::FromStr)
/// pair rather than a derive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Citation network, 2708 nodes (paper-scale).
    Cora,
    /// Citation network, 3327 nodes (paper-scale).
    Citeseer,
    /// Citation network, scaled 19717 → 8000 nodes.
    Pubmed,
    /// Knowledge graph, scaled 65755 → 6000 nodes / 210 → 24 classes.
    Nell,
    /// Co-purchase graph, scaled 13381 → 6000 nodes.
    AmazonComputer,
    /// Co-purchase graph, scaled 7487 → 5000 nodes.
    AmazonPhoto,
    /// Citation network, scaled 18333 → 6000 nodes.
    CoauthorCs,
    /// Citation network, scaled 34493 → 8000 nodes.
    CoauthorPhysics,
    /// Image network (inductive), scaled 89250 → 8000 nodes.
    Flickr,
    /// Social network (inductive), scaled 232965 → 10000 nodes / 41 → 16
    /// classes.
    Reddit,
    /// Production user–video bipartite graph, scaled 1M → 10000 nodes /
    /// 253 → 16 classes.
    Tencent,
}

impl DatasetId {
    /// All dataset ids in Table 2 order.
    pub fn all() -> [DatasetId; 11] {
        use DatasetId::*;
        [
            Cora, Citeseer, Pubmed, Nell, AmazonComputer, AmazonPhoto, CoauthorCs,
            CoauthorPhysics, Flickr, Reddit, Tencent,
        ]
    }

    /// The three citation benchmarks of Table 3.
    pub fn citation() -> [DatasetId; 3] {
        [DatasetId::Cora, DatasetId::Citeseer, DatasetId::Pubmed]
    }

    /// Lowercase canonical name.
    pub fn name(self) -> &'static str {
        spec(self).name
    }
}

impl std::str::FromStr for DatasetId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DatasetId::all()
            .into_iter()
            .find(|id| id.name() == s.to_ascii_lowercase())
            .ok_or_else(|| format!("unknown dataset '{s}'"))
    }
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full generation recipe for one dataset: the paper's statistics and the
/// (possibly scaled) parameters used here.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which dataset.
    pub id: DatasetId,
    /// Canonical lowercase name.
    pub name: &'static str,
    /// Node count reported in Table 2.
    pub paper_nodes: usize,
    /// Edge count reported in Table 2.
    pub paper_edges: usize,
    /// Feature dimension reported in Table 2.
    pub paper_features: usize,
    /// Class count reported in Table 2.
    pub paper_classes: usize,

    /// Nodes generated here.
    pub nodes: usize,
    /// Target mean degree of the generated graph.
    pub avg_degree: f64,
    /// Feature dimension generated here.
    pub features: usize,
    /// Classes generated here.
    pub classes: usize,
    /// Edge homophily of the generator.
    pub homophily: f64,
    /// Pareto exponent for the degree distribution (lower = heavier hubs).
    pub power_exponent: f64,

    /// Train/val/test sizes (counts of nodes).
    pub train: usize,
    /// Validation node count.
    pub val: usize,
    /// Test node count.
    pub test: usize,
    /// Task type.
    pub task: Task,

    /// Base feature noise (σ at the mean degree).
    pub noise_scale: f32,
    /// Exponent of the degree-dependent noise: σ_i ∝ (d̄/d_i)^η.
    pub degree_noise_exponent: f32,
    /// Base probability of masking a node's class signal entirely (see
    /// `lasagne_datasets::FeatureConfig::mask_base`).
    pub mask_base: f32,
}

/// Look up the generation recipe for a dataset.
pub fn spec(id: DatasetId) -> DatasetSpec {
    use DatasetId::*;
    use Task::*;
    // Splits for the citation datasets follow the Planetoid convention the
    // paper uses (Table 2): fixed train counts (20/class), 500 val, 1000
    // test. Scaled datasets keep the paper's train:val:test *proportions*.
    match id {
        Cora => DatasetSpec {
            id, name: "cora",
            paper_nodes: 2708, paper_edges: 5429, paper_features: 1433, paper_classes: 7,
            nodes: 2708, avg_degree: 4.0, features: 128, classes: 7,
            homophily: 0.90, power_exponent: 2.0,
            train: 140, val: 500, test: 1000, task: Transductive,
            noise_scale: 1.5, degree_noise_exponent: 0.6,
            mask_base: 0.28,
        },
        Citeseer => DatasetSpec {
            id, name: "citeseer",
            paper_nodes: 3327, paper_edges: 4732, paper_features: 3703, paper_classes: 6,
            nodes: 3327, avg_degree: 2.8, features: 128, classes: 6,
            homophily: 0.90, power_exponent: 2.1,
            train: 120, val: 500, test: 1000, task: Transductive,
            noise_scale: 2.6, degree_noise_exponent: 0.6,
            mask_base: 0.4,
        },
        Pubmed => DatasetSpec {
            id, name: "pubmed",
            paper_nodes: 19717, paper_edges: 44338, paper_features: 500, paper_classes: 3,
            nodes: 8000, avg_degree: 4.5, features: 128, classes: 3,
            homophily: 0.89, power_exponent: 2.1,
            train: 60, val: 500, test: 1000, task: Transductive,
            noise_scale: 2.4, degree_noise_exponent: 0.6,
            mask_base: 0.35,
        },
        Nell => DatasetSpec {
            id, name: "nell",
            paper_nodes: 65755, paper_edges: 266144, paper_features: 61278, paper_classes: 210,
            nodes: 6000, avg_degree: 8.0, features: 128, classes: 24,
            homophily: 0.86, power_exponent: 2.1,
            train: 600, val: 500, test: 1000, task: Transductive,
            noise_scale: 1.0, degree_noise_exponent: 0.5,
            mask_base: 0.3,
        },
        AmazonComputer => DatasetSpec {
            id, name: "amazon-computer",
            paper_nodes: 13381, paper_edges: 245778, paper_features: 767, paper_classes: 10,
            nodes: 6000, avg_degree: 12.0, features: 64, classes: 10,
            homophily: 0.85, power_exponent: 2.2,
            train: 200, val: 300, test: 5500, task: Transductive,
            noise_scale: 1.1, degree_noise_exponent: 0.5,
            mask_base: 0.3,
        },
        AmazonPhoto => DatasetSpec {
            id, name: "amazon-photo",
            paper_nodes: 7487, paper_edges: 119043, paper_features: 745, paper_classes: 8,
            nodes: 5000, avg_degree: 12.0, features: 64, classes: 8,
            homophily: 0.87, power_exponent: 2.2,
            train: 160, val: 240, test: 4600, task: Transductive,
            noise_scale: 1.0, degree_noise_exponent: 0.5,
            mask_base: 0.3,
        },
        CoauthorCs => DatasetSpec {
            id, name: "coauthor-cs",
            paper_nodes: 18333, paper_edges: 81894, paper_features: 6805, paper_classes: 15,
            nodes: 6000, avg_degree: 9.0, features: 64, classes: 15,
            homophily: 0.90, power_exponent: 2.5,
            train: 300, val: 450, test: 5250, task: Transductive,
            noise_scale: 0.9, degree_noise_exponent: 0.5,
            mask_base: 0.3,
        },
        CoauthorPhysics => DatasetSpec {
            id, name: "coauthor-physics",
            paper_nodes: 34493, paper_edges: 247962, paper_features: 8415, paper_classes: 5,
            nodes: 8000, avg_degree: 14.0, features: 64, classes: 5,
            homophily: 0.92, power_exponent: 2.4,
            train: 100, val: 150, test: 7750, task: Transductive,
            noise_scale: 0.9, degree_noise_exponent: 0.5,
            mask_base: 0.3,
        },
        Flickr => DatasetSpec {
            id, name: "flickr",
            paper_nodes: 89250, paper_edges: 899756, paper_features: 500, paper_classes: 7,
            nodes: 8000, avg_degree: 10.0, features: 64, classes: 7,
            // Flickr is a low-homophily dataset (SOTA accuracy ~51%).
            homophily: 0.55, power_exponent: 2.2,
            train: 4000, val: 2000, test: 2000, task: Inductive,
            noise_scale: 1.6, degree_noise_exponent: 0.4,
            mask_base: 0.3,
        },
        Reddit => DatasetSpec {
            id, name: "reddit",
            paper_nodes: 232965, paper_edges: 11606919, paper_features: 602, paper_classes: 41,
            nodes: 10000, avg_degree: 20.0, features: 64, classes: 16,
            // Reddit is very homophilous (SOTA accuracy ~96%).
            homophily: 0.93, power_exponent: 2.2,
            train: 6600, val: 1000, test: 2400, task: Inductive,
            noise_scale: 0.8, degree_noise_exponent: 0.4,
            mask_base: 0.3,
        },
        Tencent => DatasetSpec {
            id, name: "tencent",
            paper_nodes: 1_000_000, paper_edges: 1_434_382, paper_features: 64, paper_classes: 253,
            // 6k labeled items + 4k users; splits index item nodes only.
            nodes: 10000, avg_degree: 6.0, features: 64, classes: 16,
            homophily: 0.75, power_exponent: 1.9,
            train: 600, val: 1200, test: 3600, task: Transductive,
            noise_scale: 1.4, degree_noise_exponent: 0.4,
            mask_base: 0.3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids() {
        for id in DatasetId::all() {
            let s = spec(id);
            assert_eq!(s.id, id);
            assert!(s.nodes > 0 && s.classes > 1);
            assert!(s.train + s.val + s.test <= s.nodes);
        }
    }

    #[test]
    fn citation_splits_match_table_2() {
        assert_eq!(spec(DatasetId::Cora).train, 140);
        assert_eq!(spec(DatasetId::Citeseer).train, 120);
        assert_eq!(spec(DatasetId::Pubmed).train, 60);
        for id in DatasetId::citation() {
            let s = spec(id);
            assert_eq!(s.val, 500);
            assert_eq!(s.test, 1000);
            assert_eq!(s.task, Task::Transductive);
        }
    }

    #[test]
    fn train_counts_are_class_multiples_for_planetoid_style() {
        // 20 labeled nodes per class (Table 8's 5.2% label-rate row).
        let cora = spec(DatasetId::Cora);
        assert_eq!(cora.train % cora.classes, 0);
        assert_eq!(cora.train / cora.classes, 20);
    }

    #[test]
    fn names_round_trip() {
        for id in DatasetId::all() {
            let parsed: DatasetId = id.name().parse().unwrap();
            assert_eq!(parsed, id);
        }
        assert!("nonexistent".parse::<DatasetId>().is_err());
    }

    #[test]
    fn inductive_flags() {
        assert_eq!(spec(DatasetId::Flickr).task, Task::Inductive);
        assert_eq!(spec(DatasetId::Reddit).task, Task::Inductive);
        assert_eq!(spec(DatasetId::Cora).task, Task::Transductive);
    }
}
