//! The recommendation dataset (DESIGN.md §15): the bipartite user–item
//! generator wired into a leave-one-out top-k evaluation with per-edge
//! rating/recency features.
//!
//! Layout follows [`lasagne_graph::generators::bipartite_user_item`]: item
//! nodes come first (`0..items`), then user nodes (`items..items+users`).
//! For every user with at least two interactions, the *most recent* one
//! (highest timestamp bucket, ties to the higher item id) is held out; the
//! training graph, the edge-feature table, the interaction mask, and the
//! popularity baseline are all built from the remaining edges only, so no
//! evaluation signal leaks into training.

use std::collections::HashMap;

use lasagne_graph::generators::{bipartite_user_item, BipartiteConfig};
use lasagne_graph::Graph;
use lasagne_sparse::{Csr, EdgeData};
use lasagne_tensor::{Tensor, TensorRng};

/// Shape of a generated recommendation dataset.
#[derive(Clone, Debug)]
pub struct RecConfig {
    /// Number of item nodes (labels = categories).
    pub items: usize,
    /// Number of user nodes.
    pub users: usize,
    /// Number of item categories.
    pub classes: usize,
    /// Node-feature dimensionality.
    pub features: usize,
    /// Mean interactions per user (before holdout).
    pub avg_user_degree: f64,
    /// Timestamp buckets for the recency edge attribute.
    pub time_buckets: usize,
    /// Pareto exponent of item popularity. Lower = heavier head (a few
    /// blockbuster items soak up most interactions), higher = flatter
    /// catalog where personalization is the only signal.
    pub popularity_exponent: f64,
    /// Probability a user interaction stays inside their preferred
    /// category; the remainder goes to globally-popular items of any class.
    pub user_focus: f64,
}

impl Default for RecConfig {
    fn default() -> RecConfig {
        RecConfig {
            items: 900,
            users: 600,
            classes: 6,
            features: 32,
            avg_user_degree: 8.0,
            time_buckets: 8,
            popularity_exponent: 1.9,
            user_focus: 0.75,
        }
    }
}

/// Hit-rate@k and NDCG@k over the leave-one-out holdout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecEval {
    /// Fraction of evaluated users whose held-out item made the top-k.
    pub hit_rate: f64,
    /// Mean `1/log2(rank+2)` over evaluated users (0 when missed).
    pub ndcg: f64,
    /// Number of users with a holdout.
    pub users_evaluated: usize,
}

/// A bipartite recommendation dataset with edge features and a
/// leave-one-out holdout.
pub struct RecDataset {
    /// Training interaction graph (holdout edges removed), items first.
    pub graph: Graph,
    /// `nnz×2` edge features aligned to `graph.adjacency()`:
    /// `[(rating-3)/2, bucket/(B-1) - 0.5]`.
    pub edge_data: EdgeData,
    /// `N×F` node features.
    pub features: Tensor,
    /// Item category / user preferred category per node.
    pub labels: Vec<usize>,
    /// Number of categories.
    pub num_classes: usize,
    /// Item-node count (nodes `0..items`).
    pub items: usize,
    /// User-node count (nodes `items..items+users`).
    pub users: usize,
    /// Item nodes used for the classification training loss.
    pub train_items: Vec<usize>,
    /// One `(user_node, held_out_item)` pair per eligible user.
    pub holdout: Vec<(usize, usize)>,
    /// `users×items` binary training-interaction matrix — the serve-side
    /// candidate mask and the popularity baseline's count source.
    pub interacted: Csr,
    /// Training interaction count per item (popularity).
    pub item_counts: Vec<usize>,
    /// Edge-feature width (2: rating, recency).
    pub edge_dim: usize,
}

/// Score accumulation shared with the serving engine: plain ascending-index
/// dot product, so training-side rankings are bitwise the engine's.
pub fn dot_score(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// The shared ranking order: score descending, ties to the lower item id.
pub fn sort_ranked(scored: &mut Vec<(usize, f32)>) {
    scored.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

impl RecConfig {
    /// The shape `rec-bench` and the CLI `rec` subcommand share (the
    /// conformance drive regenerates it from the seed, so both sides must
    /// agree): more categories than the classification default so
    /// class-space dot products carry ranking signal, a flatter catalog
    /// (Pareto exponent 3.5) and focused users (0.85) — the regime where
    /// personalization rather than blockbuster-counting decides the top-k.
    pub fn demo() -> RecConfig {
        RecConfig {
            items: 600,
            users: 400,
            classes: 12,
            features: 32,
            avg_user_degree: 8.0,
            time_buckets: 8,
            popularity_exponent: 3.5,
            user_focus: 0.85,
        }
    }
}

impl RecDataset {
    /// Generate deterministically from a seed.
    pub fn generate(cfg: &RecConfig, seed: u64) -> RecDataset {
        assert!(cfg.time_buckets >= 2, "rec: need ≥ 2 time buckets for recency");
        let mut rng = TensorRng::seed_from_u64(seed ^ 0x7ec0_44d5);
        let b = bipartite_user_item(
            &BipartiteConfig {
                items: cfg.items,
                users: cfg.users,
                classes: cfg.classes,
                avg_user_degree: cfg.avg_user_degree,
                popularity_exponent: cfg.popularity_exponent,
                user_focus: cfg.user_focus,
                time_buckets: cfg.time_buckets,
            },
            &mut rng,
        );
        let n = cfg.items + cfg.users;

        // Group interactions by user; hold out each user's most recent one
        // (highest bucket, ties to the higher item id) when they have ≥ 2.
        let mut by_user: Vec<Vec<usize>> = vec![Vec::new(); cfg.users];
        for (e, &(_, u)) in b.interactions.iter().enumerate() {
            by_user[u as usize - cfg.items].push(e);
        }
        let mut held = vec![false; b.interactions.len()];
        let mut holdout: Vec<(usize, usize)> = Vec::new();
        for (u, edges) in by_user.iter().enumerate() {
            if edges.len() < 2 {
                continue;
            }
            let &pick = edges
                .iter()
                .max_by_key(|&&e| (b.edge_time_buckets[e], b.interactions[e].0))
                .expect("non-empty");
            held[pick] = true;
            holdout.push((cfg.items + u, b.interactions[pick].0 as usize));
        }

        // Training structure + per-direction attribute map.
        let mut train_edges: Vec<(u32, u32)> = Vec::new();
        let mut attrs: HashMap<(u32, u32), (u8, u8)> = HashMap::new();
        let mut item_counts = vec![0usize; cfg.items];
        let mut mask_coo: Vec<(u32, u32, f32)> = Vec::new();
        for (e, &(item, user)) in b.interactions.iter().enumerate() {
            if held[e] {
                continue;
            }
            train_edges.push((item, user));
            attrs.insert((item, user), (b.edge_ratings[e], b.edge_time_buckets[e]));
            item_counts[item as usize] += 1;
            mask_coo.push((user - cfg.items as u32, item, 1.0));
        }
        let graph = Graph::from_edges(n, &train_edges);
        let buckets = cfg.time_buckets as f32;
        let edge_data = EdgeData::for_csr(graph.adjacency(), 2, |r, c, out| {
            let key = if (r as usize) < cfg.items { (r, c) } else { (c, r) };
            let (rating, bucket) = attrs[&key];
            out[0] = (rating as f32 - 3.0) / 2.0;
            out[1] = bucket as f32 / (buckets - 1.0) - 0.5;
        });
        let interacted = Csr::from_coo(cfg.users, cfg.items, &mask_coo);

        // Node features: category centroid + noise, users noisier (their
        // taste is latent; the interactions carry the signal).
        let per_coord = 1.0 / (cfg.features as f32).sqrt();
        let centroids = rng.normal_tensor(cfg.classes, cfg.features, 0.0, per_coord);
        let mut features = Tensor::zeros(n, cfg.features);
        let mut labels = vec![0usize; n];
        for v in 0..n {
            labels[v] = if v < cfg.items {
                b.item_labels[v]
            } else {
                b.user_prefs[v - cfg.items]
            };
            let sigma = per_coord * if v < cfg.items { 0.6 } else { 1.2 };
            for (x, &mu) in features.row_mut(v).iter_mut().zip(centroids.row(labels[v])) {
                *x = mu + sigma * rng.normal();
            }
        }

        RecDataset {
            graph,
            edge_data,
            features,
            labels,
            num_classes: cfg.classes,
            items: cfg.items,
            users: cfg.users,
            train_items: (0..cfg.items).collect(),
            holdout,
            interacted,
            item_counts,
            edge_dim: 2,
        }
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.items + self.users
    }

    /// Top-k items for `user_node` by dot-product score over an `N×C`
    /// logits matrix, masking training interactions — the exact ordering
    /// the serving engine's `recommend` must reproduce bitwise.
    pub fn score_topk(&self, logits: &Tensor, user_node: usize, k: usize) -> Vec<usize> {
        let u = user_node - self.items;
        let mask = self.interacted.row_indices(u);
        let urow = logits.row(user_node);
        let mut scored: Vec<(usize, f32)> = (0..self.items)
            .filter(|&i| mask.binary_search(&(i as u32)).is_err())
            .map(|i| (i, dot_score(urow, logits.row(i))))
            .collect();
        sort_ranked(&mut scored);
        scored.truncate(k);
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Top-k items by global training popularity (ties to the lower id),
    /// masking training interactions — the baseline any learned ranker has
    /// to beat.
    pub fn popularity_topk(&self, user_node: usize, k: usize) -> Vec<usize> {
        let u = user_node - self.items;
        let mask = self.interacted.row_indices(u);
        let mut scored: Vec<(usize, f32)> = (0..self.items)
            .filter(|&i| mask.binary_search(&(i as u32)).is_err())
            .map(|i| (i, self.item_counts[i] as f32))
            .collect();
        sort_ranked(&mut scored);
        scored.truncate(k);
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Evaluate a ranker over the holdout: `rank(user_node)` returns its
    /// top-k items (already masked).
    pub fn evaluate<F: FnMut(usize) -> Vec<usize>>(&self, k: usize, mut rank: F) -> RecEval {
        let mut hits = 0usize;
        let mut ndcg = 0.0f64;
        for &(user_node, item) in &self.holdout {
            let top = rank(user_node);
            debug_assert!(top.len() <= k);
            if let Some(pos) = top.iter().position(|&i| i == item) {
                hits += 1;
                ndcg += 1.0 / ((pos as f64) + 2.0).log2();
            }
        }
        let m = self.holdout.len().max(1) as f64;
        RecEval {
            hit_rate: hits as f64 / m,
            ndcg: ndcg / m,
            users_evaluated: self.holdout.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RecConfig {
        RecConfig {
            items: 120,
            users: 80,
            classes: 4,
            features: 12,
            avg_user_degree: 5.0,
            time_buckets: 6,
            ..RecConfig::default()
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = RecDataset::generate(&small(), 3);
        let b = RecDataset::generate(&small(), 3);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.holdout, b.holdout);
        assert!(a
            .edge_data
            .as_slice()
            .iter()
            .zip(b.edge_data.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(a
            .features
            .as_slice()
            .iter()
            .zip(b.features.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn holdout_edges_leave_the_training_graph() {
        let ds = RecDataset::generate(&small(), 1);
        assert!(!ds.holdout.is_empty());
        for &(user_node, item) in &ds.holdout {
            assert!(user_node >= ds.items && user_node < ds.num_nodes());
            assert!(item < ds.items);
            // Not in the training adjacency, not in the mask.
            assert_eq!(
                ds.graph.adjacency().edge_position(item as u32, user_node as u32),
                None
            );
            let u = user_node - ds.items;
            assert!(ds
                .interacted
                .row_indices(u)
                .binary_search(&(item as u32))
                .is_err());
            // The user still has at least one training interaction.
            assert!(ds.interacted.row_nnz(u) >= 1);
        }
        ds.edge_data.check_aligned(ds.graph.adjacency()).unwrap();
    }

    #[test]
    fn rankers_mask_interacted_items() {
        let ds = RecDataset::generate(&small(), 2);
        let user_node = ds.holdout[0].0;
        let u = user_node - ds.items;
        let mask = ds.interacted.row_indices(u);
        let top = ds.popularity_topk(user_node, 10);
        for &i in &top {
            assert!(mask.binary_search(&(i as u32)).is_err(), "recommended an interacted item");
        }
    }

    #[test]
    fn evaluate_scores_a_perfect_oracle_at_one() {
        let ds = RecDataset::generate(&small(), 4);
        let holdout: HashMap<usize, usize> = ds.holdout.iter().copied().collect();
        let eval = ds.evaluate(10, |user| vec![holdout[&user]]);
        assert_eq!(eval.hit_rate, 1.0);
        assert_eq!(eval.ndcg, 1.0);
        assert_eq!(eval.users_evaluated, ds.holdout.len());
    }
}
