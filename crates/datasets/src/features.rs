//! Node feature generation with degree-dependent noise.
//!
//! Features are class centroids plus Gaussian noise whose scale grows as a
//! node's degree shrinks:
//!
//! ```text
//! x_i = µ_{y_i} + σ_i ε,    σ_i = noise_scale · (d̄ / d_i)^η   (clamped)
//! ```
//!
//! This plants the locality phenomenon of Fig 1: peripheral nodes carry
//! unreliable features and recover signal only by aggregating deep
//! neighborhoods, while hubs are locally clean but (in a DC-SBM) collect the
//! most cross-community edges in absolute terms, so deep propagation mixes
//! their embedding across clusters.

use lasagne_graph::Graph;
use lasagne_tensor::{Tensor, TensorRng};

/// Parameters of the feature generator.
#[derive(Clone, Debug)]
pub struct FeatureConfig {
    /// Feature dimensionality M.
    pub dim: usize,
    /// Norm scale of class centroids.
    pub signal: f32,
    /// Noise σ at the mean degree.
    pub noise_scale: f32,
    /// Degree exponent η; 0 disables degree dependence.
    pub degree_noise_exponent: f32,
    /// Base probability that a node's features are *pure noise* (no class
    /// centroid at all). The effective per-node probability is
    /// `clamp(mask_base · m_i, 0, 0.9)` with `m_i` the degree-noise
    /// multiplier, so peripheral nodes are masked far more often — their
    /// class is then only recoverable from multi-hop neighbors, which is
    /// what makes depth genuinely necessary (Fig 1's "non-central nodes
    /// rely on the deep architecture").
    pub mask_base: f32,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            dim: 64,
            signal: 1.0,
            noise_scale: 1.0,
            degree_noise_exponent: 0.5,
            mask_base: 0.0,
        }
    }
}

/// Per-node noise multipliers (σ_i / noise_scale), clamped to `[0.5, 4.0]`.
pub fn degree_noise_multipliers(g: &Graph, exponent: f32) -> Vec<f32> {
    let avg = g.average_degree().max(1.0) as f32;
    (0..g.num_nodes())
        .map(|v| {
            let d = g.degree(v).max(1) as f32;
            (avg / d).powf(exponent).clamp(0.5, 4.0)
        })
        .collect()
}

/// Generate `N×dim` features for the labeled graph.
pub fn generate_features(
    g: &Graph,
    labels: &[usize],
    num_classes: usize,
    cfg: &FeatureConfig,
    rng: &mut TensorRng,
) -> Tensor {
    assert_eq!(labels.len(), g.num_nodes(), "generate_features: label count");
    // Class centroids: i.i.d. Gaussian directions with expected norm
    // ~ signal·sqrt(dim)/sqrt(dim) — keep per-coordinate scale `signal/√dim`
    // so the centroid norm is `signal` regardless of dimension.
    let per_coord = cfg.signal / (cfg.dim as f32).sqrt();
    let centroids = rng.normal_tensor(num_classes, cfg.dim, 0.0, per_coord);
    let noise_mult = degree_noise_multipliers(g, cfg.degree_noise_exponent);

    let mut x = Tensor::zeros(g.num_nodes(), cfg.dim);
    let noise_per_coord = cfg.noise_scale / (cfg.dim as f32).sqrt();
    for i in 0..g.num_nodes() {
        let c = labels[i];
        assert!(c < num_classes, "generate_features: label {c} out of range");
        let sigma = noise_per_coord * noise_mult[i];
        let masked = cfg.mask_base > 0.0
            && rng.bernoulli((cfg.mask_base * noise_mult[i]).clamp(0.0, 0.9));
        let row = x.row_mut(i);
        for (v, &mu) in row.iter_mut().zip(centroids.row(c)) {
            let signal = if masked { 0.0 } else { mu };
            *v = signal + sigma * rng.normal();
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_path() -> (Graph, Vec<usize>) {
        // Node 0 is a hub (degree 5); nodes 6..9 form a path (degree ≤ 2).
        let g = Graph::from_edges(
            10,
            &[
                (0, 1), (0, 2), (0, 3), (0, 4), (0, 5),
                (6, 7), (7, 8), (8, 9),
            ],
        );
        let labels = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        (g, labels)
    }

    #[test]
    fn shapes_and_determinism() {
        let (g, labels) = star_plus_path();
        let cfg = FeatureConfig { dim: 16, ..Default::default() };
        let a = generate_features(&g, &labels, 2, &cfg, &mut TensorRng::seed_from_u64(5));
        let b = generate_features(&g, &labels, 2, &cfg, &mut TensorRng::seed_from_u64(5));
        assert_eq!(a.shape(), (10, 16));
        assert_eq!(a, b);
    }

    #[test]
    fn hubs_get_less_noise_than_periphery() {
        let (g, _) = star_plus_path();
        let m = degree_noise_multipliers(&g, 0.5);
        assert!(m[0] < m[9], "hub multiplier {} vs leaf {}", m[0], m[9]);
        // Clamps hold.
        assert!(m.iter().all(|&v| (0.5..=4.0).contains(&v)));
    }

    #[test]
    fn exponent_zero_disables_degree_dependence() {
        let (g, _) = star_plus_path();
        let m = degree_noise_multipliers(&g, 0.0);
        assert!(m.iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn same_class_nodes_are_closer_in_expectation() {
        // With many dims and moderate noise, intra-class distances must be
        // smaller than inter-class distances on average.
        let (g, labels) = star_plus_path();
        let cfg = FeatureConfig {
            dim: 256,
            signal: 2.0,
            noise_scale: 0.5,
            degree_noise_exponent: 0.0,
            mask_base: 0.0,
        };
        let x = generate_features(&g, &labels, 2, &cfg, &mut TensorRng::seed_from_u64(1));
        let dist = |a: usize, b: usize| -> f32 {
            x.row(a)
                .iter()
                .zip(x.row(b))
                .map(|(p, q)| (p - q) * (p - q))
                .sum::<f32>()
        };
        let intra = (dist(0, 1) + dist(6, 7)) / 2.0;
        let inter = (dist(0, 6) + dist(1, 9)) / 2.0;
        assert!(inter > intra, "inter {inter} intra {intra}");
    }

    #[test]
    fn masking_zeroes_class_signal_for_some_nodes() {
        let (g, labels) = star_plus_path();
        let cfg = FeatureConfig {
            dim: 512,
            signal: 4.0,
            noise_scale: 0.01,
            degree_noise_exponent: 0.5,
            mask_base: 0.5,
        };
        let x = generate_features(&g, &labels, 2, &cfg, &mut TensorRng::seed_from_u64(9));
        // With near-zero noise, masked rows have tiny norms, unmasked have
        // norm ≈ 4; both kinds must exist at mask_base 0.5.
        let norms: Vec<f32> = (0..10)
            .map(|i| x.row(i).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect();
        assert!(norms.iter().any(|&n| n < 1.0), "no masked node: {norms:?}");
        assert!(norms.iter().any(|&n| n > 3.0), "no unmasked node: {norms:?}");
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn label_count_checked() {
        let (g, _) = star_plus_path();
        generate_features(
            &g,
            &[0, 1],
            2,
            &FeatureConfig::default(),
            &mut TensorRng::seed_from_u64(0),
        );
    }
}
