//! Pool lifecycle tests: the workers are spawned once per size, survive
//! arbitrarily many jobs (no thread-per-job leak), propagate chunk panics
//! to the submitter, and stay usable afterwards.
//!
//! A single `#[test]` sequences all of it because the pool (and its spawn
//! counter) is process-global.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn pool_is_persistent_panic_safe_and_resizable() {
    lasagne_par::set_threads(3);
    assert_eq!(lasagne_par::current_threads(), 3);
    let spawned_before = lasagne_par::total_threads_spawned();

    // Many jobs, each with many chunks: every chunk must run exactly once,
    // and no new OS threads may appear.
    for round in 0..100usize {
        let hits = AtomicUsize::new(0);
        lasagne_par::parallel_for_rows(64, 4, |r| {
            hits.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64, "round {round}");
    }
    assert_eq!(
        lasagne_par::total_threads_spawned(),
        spawned_before,
        "jobs must reuse the persistent workers, not spawn new threads"
    );

    // A panic inside one chunk reaches the submitting thread with its
    // payload intact...
    let result = catch_unwind(AssertUnwindSafe(|| {
        lasagne_par::parallel_for_rows(32, 1, |r| {
            if r.start == 17 {
                panic!("boom in chunk 17");
            }
        });
    }));
    let payload = result.expect_err("worker panic must propagate");
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("boom in chunk 17"), "unexpected payload: {msg}");

    // ...and the pool keeps working afterwards.
    let hits = AtomicUsize::new(0);
    lasagne_par::parallel_for_rows(50, 7, |r| {
        hits.fetch_add(r.len(), Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 50);

    // Nested parallelism runs inline instead of deadlocking the pool.
    let nested = AtomicUsize::new(0);
    lasagne_par::parallel_for_rows(8, 2, |_| {
        lasagne_par::parallel_for_rows(8, 2, |inner| {
            nested.fetch_add(inner.len(), Ordering::Relaxed);
        });
    });
    assert_eq!(nested.load(Ordering::Relaxed), 32);

    // Resizing spawns a fresh pool; same-size set_threads is a no-op.
    lasagne_par::set_threads(2);
    assert_eq!(lasagne_par::current_threads(), 2);
    let after_resize = lasagne_par::total_threads_spawned();
    assert!(after_resize > spawned_before, "resize must build a new pool");
    lasagne_par::set_threads(2);
    assert_eq!(lasagne_par::total_threads_spawned(), after_resize);

    let hits = AtomicUsize::new(0);
    lasagne_par::parallel_for_rows(64, 4, |r| {
        hits.fetch_add(r.len(), Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 64);
}
