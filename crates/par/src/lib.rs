//! `lasagne-par`: a zero-registry-dependency, `std::thread`-based parallel
//! runtime for the Lasagne kernels.
//!
//! A single persistent worker pool is spawned on first use, sized by (in
//! precedence order) [`set_threads`], the `LASAGNE_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. Entry points split
//! work into chunks and fan the chunks out over the pool; with one thread —
//! or one chunk, or from inside another parallel region — they run inline
//! with zero pool traffic.
//!
//! # Determinism contract
//!
//! Every entry point guarantees results **bitwise identical** to a
//! single-threaded run, for any thread count:
//!
//! 1. **Fixed chunk boundaries.** Chunks are a pure function of the problem
//!    shape (row count / chunk size / CSR `indptr`), never of the thread
//!    count. Threads only race for *which worker* executes a chunk.
//! 2. **Disjoint writes.** Each chunk owns an exclusive slice of the output
//!    (a contiguous row range); no two chunks write the same element.
//! 3. **Unchanged accumulation order.** Within a chunk, elements are
//!    computed in the same order as the serial loop, so no floating-point
//!    reassociation can occur.
//!
//! Kernels that *reduce across* chunk boundaries (e.g. `Tensor::sum`) keep
//! the contract by always using the same fixed chunk tree and combining the
//! per-chunk partials in chunk order — again independent of thread count.
//!
//! This is what keeps the stack's same-seed-training and kill→resume
//! bitwise-equality guarantees intact when `LASAGNE_THREADS` varies between
//! runs (DESIGN.md §8).

mod pool;

pub use pool::total_threads_spawned;

use std::ops::Range;
use std::sync::{Arc, RwLock};

use pool::Pool;

/// Default nnz budget per chunk for the CSR partitioner: small enough to
/// balance skewed degree distributions, large enough that per-chunk
/// dispatch cost is noise.
pub const DEFAULT_CSR_CHUNK_NNZ: usize = 4096;

static POOL: RwLock<Option<Arc<Pool>>> = RwLock::new(None);

fn default_threads() -> usize {
    if let Ok(raw) = std::env::var("LASAGNE_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
        eprintln!("lasagne-par: ignoring invalid LASAGNE_THREADS={raw:?}");
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn pool() -> Arc<Pool> {
    if let Some(p) = POOL.read().unwrap_or_else(|e| e.into_inner()).as_ref() {
        return Arc::clone(p);
    }
    let mut slot = POOL.write().unwrap_or_else(|e| e.into_inner());
    if let Some(p) = slot.as_ref() {
        return Arc::clone(p);
    }
    let p = Arc::new(Pool::new(default_threads()));
    *slot = Some(Arc::clone(&p));
    p
}

/// Resize the global pool to exactly `n` threads (clamped to ≥ 1). A no-op
/// when the pool already has `n` threads. Jobs already in flight finish on
/// the old pool; its workers are joined once the last reference drops.
///
/// By the determinism contract this never changes any kernel result — only
/// how many OS threads compute it.
pub fn set_threads(n: usize) {
    let n = n.max(1);
    let mut slot = POOL.write().unwrap_or_else(|e| e.into_inner());
    if slot.as_ref().is_some_and(|p| p.threads() == n) {
        return;
    }
    *slot = Some(Arc::new(Pool::new(n)));
}

/// The thread count the next parallel region will use (creates the pool on
/// first call).
pub fn current_threads() -> usize {
    pool().threads()
}

/// Dispatch `task(c)` for `c in 0..n_chunks`: inline when the job is
/// trivial, single-threaded, or nested inside another parallel region;
/// otherwise across the pool.
fn run_job(n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    lasagne_obs::counter_add("par.chunks", n_chunks as u64);
    if n_chunks == 1 || pool::in_parallel() {
        lasagne_obs::counter_add("par.jobs_inline", 1);
        for c in 0..n_chunks {
            task(c);
        }
        return;
    }
    let p = pool();
    if p.threads() == 1 {
        lasagne_obs::counter_add("par.jobs_inline", 1);
        for c in 0..n_chunks {
            task(c);
        }
    } else {
        lasagne_obs::counter_add("par.jobs_pooled", 1);
        p.run(n_chunks, task);
    }
}

/// Raw mutable pointer that may cross thread boundaries. Sound because
/// every job hands each chunk a *disjoint* region behind this pointer and
/// the submitting frame outlives the job.
struct SyncPtr<T>(*mut T);
unsafe impl<T: Send> Send for SyncPtr<T> {}
unsafe impl<T: Send> Sync for SyncPtr<T> {}

impl<T> SyncPtr<T> {
    /// Going through a method (rather than `.0`) makes closures capture the
    /// whole `SyncPtr` — edition-2021 disjoint capture would otherwise grab
    /// the bare non-`Sync` pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Run `f` over `0..n` split into fixed chunks of `chunk` rows:
/// `f(0..chunk)`, `f(chunk..2*chunk)`, …, in parallel. Boundaries depend
/// only on `n` and `chunk`, never on the thread count.
///
/// `f` must confine any writes to state owned by (or partitioned by) its
/// range — the runtime cannot check this for the range-based API; use
/// [`par_row_chunks_mut`] to get the partitioning enforced by the borrow
/// checker instead.
pub fn parallel_for_rows<F>(n: usize, chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    run_job(n_chunks, &|c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        f(lo..hi);
    });
}

/// nnz-balanced chunk boundaries over a CSR row-pointer array: consecutive
/// row ranges each holding ≥ `target_nnz` stored entries (except possibly
/// the last). Returns `[0, b1, b2, …, rows]`. Deterministic in
/// `indptr`/`target_nnz` alone — thread count never moves a boundary.
pub fn csr_chunk_boundaries(indptr: &[usize], target_nnz: usize) -> Vec<usize> {
    let rows = indptr.len().saturating_sub(1);
    let target = target_nnz.max(1);
    let mut bounds = Vec::with_capacity(8);
    bounds.push(0);
    let mut start = 0;
    while start < rows {
        let mut end = start + 1;
        while end < rows && indptr[end] - indptr[start] < target {
            end += 1;
        }
        bounds.push(end);
        start = end;
    }
    bounds
}

/// Run `f` over the rows of a CSR structure, partitioned by
/// [`csr_chunk_boundaries`] with the default nnz budget — the load-balanced
/// counterpart of [`parallel_for_rows`] for matrices whose per-row nnz is
/// skewed (power-law graphs make even-row splits badly imbalanced).
pub fn parallel_for_csr_rows<F>(indptr: &[usize], f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let bounds = csr_chunk_boundaries(indptr, DEFAULT_CSR_CHUNK_NNZ);
    run_job(bounds.len() - 1, &|c| f(bounds[c]..bounds[c + 1]));
}

/// Split `data` (a row-major `rows × width` buffer) into fixed chunks of
/// `chunk_rows` rows and call `f(first_row, chunk_slice)` on each in
/// parallel. The disjoint-write half of the determinism contract is
/// enforced by construction: each invocation owns its slice exclusively.
pub fn par_row_chunks_mut<T, F>(data: &mut [T], width: usize, chunk_rows: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(width > 0, "par_row_chunks_mut: zero width with non-empty data");
    assert_eq!(data.len() % width, 0, "par_row_chunks_mut: len not a multiple of width");
    let rows = data.len() / width;
    let chunk_rows = chunk_rows.max(1);
    let n_chunks = rows.div_ceil(chunk_rows);
    let base = SyncPtr(data.as_mut_ptr());
    run_job(n_chunks, &|c| {
        let lo = c * chunk_rows;
        let hi = (lo + chunk_rows).min(rows);
        // SAFETY: chunk `c` is claimed exactly once and [lo, hi) ranges of
        // distinct chunks are disjoint, so this is the only live reference
        // to these elements; `data` outlives the job (run_job blocks).
        let slice = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(lo * width), (hi - lo) * width)
        };
        f(lo, slice);
    });
}

/// [`par_row_chunks_mut`] with nnz-balanced CSR boundaries: `data` is the
/// row-major `rows × width` output of a sparse kernel, partitioned so each
/// chunk covers ≈ `target_nnz` stored entries of the operator.
pub fn par_csr_row_chunks_mut<T, F>(
    data: &mut [T],
    width: usize,
    indptr: &[usize],
    target_nnz: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(width > 0, "par_csr_row_chunks_mut: zero width with non-empty data");
    let rows = data.len() / width;
    assert_eq!(data.len(), rows * width, "par_csr_row_chunks_mut: len not a multiple of width");
    assert_eq!(indptr.len(), rows + 1, "par_csr_row_chunks_mut: indptr length");
    let bounds = csr_chunk_boundaries(indptr, target_nnz);
    let base = SyncPtr(data.as_mut_ptr());
    run_job(bounds.len() - 1, &|c| {
        let (lo, hi) = (bounds[c], bounds[c + 1]);
        // SAFETY: as in `par_row_chunks_mut` — boundaries are disjoint and
        // each chunk index is claimed exactly once.
        let slice = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(lo * width), (hi - lo) * width)
        };
        f(lo, slice);
    });
}

/// Map fixed chunks of `0..n` to values in parallel, returning the per-chunk
/// results **in chunk order**. The building block for reductions that stay
/// bitwise thread-count-invariant: callers fold the returned partials
/// left-to-right, so the reduction tree is fixed by `n` and `chunk` alone.
pub fn parallel_map_chunks<R, F>(n: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = n.div_ceil(chunk);
    let mut out: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
    {
        let base = SyncPtr(out.as_mut_ptr());
        run_job(n_chunks, &|c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let value = f(c, lo..hi);
            // SAFETY: slot `c` is written by exactly one chunk invocation.
            unsafe { *base.get().add(c) = Some(value) };
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("parallel_map_chunks: chunk did not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_boundaries_cover_all_rows_and_balance_nnz() {
        // Rows with nnz 0,0,5,1,1,1,8,0 — total 16.
        let indptr = vec![0, 0, 0, 5, 6, 7, 8, 16, 16];
        let bounds = csr_chunk_boundaries(&indptr, 5);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), 8);
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "boundaries strictly increase: {bounds:?}");
        }
        // Every chunk except the last reaches the nnz target.
        for w in bounds.windows(2).rev().skip(1) {
            assert!(indptr[w[1]] - indptr[w[0]] >= 5, "undersized chunk in {bounds:?}");
        }
    }

    #[test]
    fn csr_boundaries_handle_empty_matrix() {
        assert_eq!(csr_chunk_boundaries(&[0], 64), vec![0]);
        assert_eq!(csr_chunk_boundaries(&[], 64), vec![0]);
    }

    #[test]
    fn map_chunks_returns_in_chunk_order() {
        let got = parallel_map_chunks(10, 3, |c, r| (c, r.start, r.end));
        assert_eq!(got, vec![(0, 0, 3), (1, 3, 6), (2, 6, 9), (3, 9, 10)]);
    }

    #[test]
    fn row_chunks_partition_exactly() {
        let mut data = vec![0u32; 7 * 3];
        par_row_chunks_mut(&mut data, 3, 2, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(3).enumerate() {
                for v in row {
                    *v = (row0 + r) as u32;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 3) as u32);
        }
    }

    #[test]
    fn empty_inputs_are_noops() {
        parallel_for_rows(0, 8, |_| panic!("must not run"));
        par_row_chunks_mut(&mut [] as &mut [f32], 0, 4, |_, _| panic!("must not run"));
        assert!(parallel_map_chunks(0, 8, |_, _| 0u8).is_empty());
    }
}
