//! The persistent worker pool behind the `lasagne-par` entry points.
//!
//! One pool lives for the whole process (rebuildable via
//! [`crate::set_threads`]). A *job* is a closure over chunk indices
//! `0..n_chunks`; workers and the submitting thread race through the chunk
//! counter with `fetch_add`, so *which thread* runs a chunk is scheduling
//! noise, but *what each chunk computes* — and therefore the result — is
//! fixed by the chunk boundaries alone (see the determinism contract in the
//! crate docs and DESIGN.md §8).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

thread_local! {
    /// True on pool workers, and on the submitting thread while it
    /// participates in a job. Nested parallel entry points check this and
    /// degrade to inline execution instead of deadlocking on `submit`.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Lifetime-count of OS threads this process has spawned for pools; lets
/// tests assert that repeated jobs reuse workers instead of leaking threads.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total pool worker threads ever spawned by this process.
pub fn total_threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// True while the current thread is executing inside a pool job.
pub(crate) fn in_parallel() -> bool {
    IN_PARALLEL.with(|c| c.get())
}

/// Erased pointer to the current job's chunk closure. `Pool::run` keeps the
/// closure's frame alive until every chunk has finished, so the pointer
/// never dangles.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared `&`-calls from many threads are its
// contract) and outlives the job; see `Pool::run`.
unsafe impl Send for TaskPtr {}

#[derive(Clone, Copy)]
struct Job {
    task: TaskPtr,
    n_chunks: usize,
}

struct State {
    job: Option<Job>,
    /// Increments once per submitted job so a worker never re-runs a job it
    /// has already finished (or joins one that has been cleared).
    seq: u64,
    /// Workers currently inside the active job.
    running: usize,
    shutdown: bool,
    /// First panic payload captured from any chunk of the active job.
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled on job submission and shutdown.
    work: Condvar,
    /// Signaled when the last worker leaves a job.
    done: Condvar,
    /// Next unclaimed chunk of the active job.
    next_chunk: AtomicUsize,
}

fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    // A panicking chunk is caught before the payload is stored under this
    // lock, so poisoning can only come from an assert inside the tiny
    // critical sections below; recover rather than cascade.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size persistent worker pool (`threads - 1` workers; the
/// submitting thread is the remaining participant).
pub(crate) struct Pool {
    shared: Arc<Shared>,
    /// Serializes `run` calls from different user threads.
    submit: Mutex<()>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                seq: 0,
                running: 0,
                shutdown: false,
                panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next_chunk: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(threads.saturating_sub(1));
        for i in 1..threads {
            let sh = Arc::clone(&shared);
            THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
            let handle = std::thread::Builder::new()
                .name(format!("lasagne-par-{i}"))
                .spawn(move || worker_loop(sh))
                .expect("lasagne-par: failed to spawn worker thread");
            workers.push(handle);
        }
        Pool { shared, submit: Mutex::new(()), threads, workers }
    }

    /// Configured thread count (including the submitting thread).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `task(c)` for every `c in 0..n_chunks` across the pool.
    /// Returns after *all* chunks have finished; re-raises the first chunk
    /// panic. Callers guarantee `n_chunks > 1` and `threads > 1` (the cheap
    /// cases are inlined upstream in `run_job`).
    pub(crate) fn run(&self, n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        let _submit = self.submit.lock().unwrap_or_else(|e| e.into_inner());
        // SAFETY (lifetime erasure): this frame does not return until
        // `running == 0` and the chunk counter is exhausted, so the borrow
        // outlives every dereference of the erased pointer.
        let task_static: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task) };
        let job = Job { task: TaskPtr(task_static as *const _), n_chunks };
        {
            let mut st = lock(&self.shared.state);
            self.shared.next_chunk.store(0, Ordering::SeqCst);
            st.seq = st.seq.wrapping_add(1);
            st.job = Some(job);
            st.panic = None;
            self.shared.work.notify_all();
        }
        // Participate. Mark the thread parallel so a nested entry point
        // from inside a chunk runs inline instead of re-locking `submit`.
        let was = IN_PARALLEL.with(|c| c.replace(true));
        run_chunks(&self.shared, job);
        IN_PARALLEL.with(|c| c.set(was));

        let mut st = lock(&self.shared.state);
        while st.running > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let payload = st.panic.take();
        drop(st);
        drop(_submit);
        if let Some(p) = payload {
            resume_unwind(p);
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and run chunks of `job` until the counter is exhausted. Panics are
/// caught per chunk (first payload wins) so one poisoned chunk cannot kill
/// a worker thread or leave siblings blocked.
fn run_chunks(shared: &Shared, job: Job) {
    // Per-worker busy time: one Instant pair per (worker, job), so the
    // traced path adds two clock reads per job — nothing per chunk — and
    // the disabled path adds one atomic load.
    let busy_start = lasagne_obs::enabled().then(std::time::Instant::now);
    // SAFETY: see `Pool::run` — the closure outlives the job.
    let task = unsafe { &*job.task.0 };
    loop {
        let c = shared.next_chunk.fetch_add(1, Ordering::Relaxed);
        if c >= job.n_chunks {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(c))) {
            let mut st = lock(&shared.state);
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
    }
    if let Some(t0) = busy_start {
        lasagne_obs::counter_add_ns("par.busy_ns", t0.elapsed().as_nanos() as u64);
    }
}

fn worker_loop(shared: Arc<Shared>) {
    IN_PARALLEL.with(|c| c.set(true));
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job {
                    if st.seq != seen {
                        seen = st.seq;
                        st.running += 1;
                        break job;
                    }
                }
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        run_chunks(&shared, job);
        let mut st = lock(&shared.state);
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_all();
        }
    }
}
