//! Graph structure, classic graph algorithms and random-graph generators.
//!
//! The paper's core claim is about **node locality**: hub nodes over-smooth
//! under deep propagation while peripheral nodes need depth (Fig 1, §5.2.2).
//! This crate supplies everything needed to study that claim:
//!
//! * [`Graph`] — an undirected graph with a cached CSR adjacency;
//! * algorithms — BFS, connected components, **Average Path Length** (Eq 8,
//!   used to pick depth sweeps), **PageRank** (the paper's locality measure),
//!   clustering coefficient, and a BFS-grown partitioner (the ClusterGCN
//!   substrate);
//! * generators — a degree-corrected stochastic block model (power-law hubs +
//!   controllable homophily), Barabási–Albert, and a bipartite user–item
//!   generator with Pareto item popularity (the Tencent substitute).
//!
//! # Example
//! ```
//! use lasagne_graph::{Graph, generators};
//! use lasagne_tensor::TensorRng;
//!
//! let mut rng = TensorRng::seed_from_u64(7);
//! let (g, labels) = generators::dc_sbm(&generators::DcSbmConfig {
//!     nodes: 200, classes: 4, avg_degree: 6.0, homophily: 0.8,
//!     power_exponent: 2.5, max_weight_ratio: 50.0,
//! }, &mut rng);
//! assert_eq!(g.num_nodes(), 200);
//! assert_eq!(labels.len(), 200);
//! let pr = lasagne_graph::pagerank(&g, 0.85, 50);
//! assert!((pr.iter().sum::<f32>() - 1.0).abs() < 1e-4);
//! ```

mod algos;
mod error;
pub mod generators;
mod graph;
mod partition;
mod stats;

pub use algos::{
    average_path_length, bfs_distances, clustering_coefficient, connected_components, pagerank,
    partition_bfs, sample_neighbors,
};
pub use error::GraphError;
pub use graph::Graph;
pub use partition::{OperatorBlock, PartitionBlock, Partitioning};
pub use stats::{degree_assortativity, degree_histogram, degree_stats, k_core, DegreeStats};
