//! The partitioned-graph substrate: deterministic balanced parts with
//! halo/ghost index maps and per-operator CSR blocks.
//!
//! [`Partitioning`] wraps [`partition_bfs`](crate::partition_bfs) into the
//! structure out-of-core execution needs:
//!
//! * **cores** — every node in exactly one part, each part's core sorted
//!   ascending and the parts themselves ordered by their smallest core node,
//!   so the partition layout is a pure function of `(graph, k, seed)` and
//!   never of thread count or iteration order;
//! * **halos** — per part, the sorted one-hop boundary (nodes outside the
//!   core adjacent to it). A one-hop halo is exactly the ghost set a single
//!   SpMM against a graph-local operator (Â, Ã_rw, A, A+I) needs: those
//!   operators only couple a row to itself and its neighbors;
//! * **operator blocks** — [`Partitioning::operator_block`] slices any CSR
//!   operator to `core × touched-columns` with a sorted (monotone) column
//!   remap. Because the SpMM kernel accumulates each output element over the
//!   row's stored nonzeros in ascending-column order starting from +0.0, and
//!   a monotone remap preserves that order, `block.spmm(gathered_x)` is
//!   **bitwise** equal to the core rows of the full `m.spmm(x)` — the lemma
//!   the partition-equivalence harness leans on (DESIGN.md §14).

use lasagne_sparse::Csr;
use lasagne_tensor::TensorRng;

use crate::error::GraphError;
use crate::{partition_bfs, Graph};

/// One part of a [`Partitioning`]: its owned nodes plus ghost-node maps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionBlock {
    /// Nodes owned by this part, sorted ascending. Disjoint across parts;
    /// the union over all parts is `0..n`.
    pub core: Vec<usize>,
    /// One-hop boundary: nodes **not** in `core` with at least one neighbor
    /// in `core`, sorted ascending. These are the ghost rows a one-SpMM halo
    /// exchange must fetch.
    pub halo: Vec<usize>,
}

impl PartitionBlock {
    /// Core and halo merged into one sorted list — the part's locally
    /// resident node set (`core ∪ halo`).
    pub fn locals(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.core.len() + self.halo.len());
        let (mut i, mut j) = (0, 0);
        while i < self.core.len() && j < self.halo.len() {
            // Core and halo are disjoint, so no equal case to merge.
            if self.core[i] < self.halo[j] {
                out.push(self.core[i]);
                i += 1;
            } else {
                out.push(self.halo[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&self.core[i..]);
        out.extend_from_slice(&self.halo[j..]);
        out
    }
}

/// A CSR operator restricted to one part: the core rows with columns
/// renumbered onto the sorted `cols` list (the rows other parts must ship
/// over in a halo exchange).
#[derive(Clone, Debug)]
pub struct OperatorBlock {
    /// Global column ids backing the block's local columns, sorted
    /// ascending: local column `j` is global column `cols[j]`.
    pub cols: Vec<usize>,
    /// `core.len() × cols.len()` slice of the operator.
    pub csr: Csr,
}

/// Deterministic balanced partitioning of a graph with ghost-node maps.
#[derive(Clone, Debug)]
pub struct Partitioning {
    parts: Vec<PartitionBlock>,
    /// `part_of[v]` = index of the part owning node `v`.
    part_of: Vec<u32>,
}

impl Partitioning {
    /// Partition `g` into `k` parts via BFS growth from `rng`-shuffled
    /// seeds, then canonicalize: cores sorted, parts ordered by smallest
    /// core node (empty parts last). Same `(g, k, rng state)` → identical
    /// partitioning, at any thread count.
    pub fn new(g: &Graph, k: usize, rng: &mut TensorRng) -> Result<Partitioning, GraphError> {
        let raw = partition_bfs(g, k, rng)?;
        Ok(Partitioning::from_parts(g, raw))
    }

    /// Canonicalize an existing node partition (e.g. the exact part lists a
    /// trainer already consumed) into the same deterministic layout
    /// [`Partitioning::new`] produces. Parts must be disjoint and cover
    /// `0..g.num_nodes()` — the `partition_bfs` contract.
    pub fn from_parts(g: &Graph, raw: Vec<Vec<usize>>) -> Partitioning {
        let n = g.num_nodes();
        let mut parts: Vec<Vec<usize>> = raw;
        for part in &mut parts {
            part.sort_unstable();
        }
        // Order parts by smallest owned node; empty parts sink to the end.
        parts.sort_by_key(|p| p.first().copied().unwrap_or(usize::MAX));
        let mut part_of = vec![u32::MAX; n];
        for (p, part) in parts.iter().enumerate() {
            for &v in part {
                debug_assert_eq!(part_of[v], u32::MAX, "node {v} owned twice");
                part_of[v] = p as u32;
            }
        }
        debug_assert!(part_of.iter().all(|&p| p != u32::MAX), "uncovered node");
        let parts = parts
            .into_iter()
            .enumerate()
            .map(|(p, core)| {
                let mut halo: Vec<usize> = Vec::new();
                for &u in &core {
                    for &v in g.neighbors(u) {
                        if part_of[v as usize] != p as u32 {
                            halo.push(v as usize);
                        }
                    }
                }
                halo.sort_unstable();
                halo.dedup();
                PartitionBlock { core, halo }
            })
            .collect();
        Partitioning { parts, part_of }
    }

    /// Number of parts (some may be empty).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// All parts in deterministic order.
    pub fn parts(&self) -> &[PartitionBlock] {
        &self.parts
    }

    /// One part.
    pub fn part(&self, p: usize) -> &PartitionBlock {
        &self.parts[p]
    }

    /// Owner map: `part_of()[v]` is the part index owning node `v`.
    pub fn part_of(&self) -> &[u32] {
        &self.part_of
    }

    /// Slice a CSR operator to part `p`: rows = the part's core, columns =
    /// the sorted union of the core and every column those rows touch. For
    /// graph-local operators the extra columns are a subset of the one-hop
    /// halo; the column remap is monotone, so the block SpMM is bitwise
    /// equal to the corresponding rows of the full SpMM (module docs).
    pub fn operator_block(&self, m: &Csr, p: usize) -> OperatorBlock {
        let core = &self.parts[p].core;
        let mut cols: Vec<usize> = core.clone();
        for &r in core {
            cols.extend(m.row_indices(r).iter().map(|&c| c as usize));
        }
        cols.sort_unstable();
        cols.dedup();
        let csr = m.slice(core, &cols);
        OperatorBlock { cols, csr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_is_the_resident_layout() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut rng = TensorRng::seed_from_u64(0);
        let p = Partitioning::new(&g, 1, &mut rng).unwrap();
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.part(0).core, vec![0, 1, 2, 3, 4]);
        assert!(p.part(0).halo.is_empty());
        assert_eq!(p.part_of(), &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn bad_k_propagates_typed() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut rng = TensorRng::seed_from_u64(0);
        assert_eq!(
            Partitioning::new(&g, 0, &mut rng).unwrap_err(),
            GraphError::InvalidPartitionCount { k: 0, n: 3 }
        );
    }

    #[test]
    fn locals_merges_sorted() {
        let b = PartitionBlock { core: vec![1, 4, 6], halo: vec![0, 5, 9] };
        assert_eq!(b.locals(), vec![0, 1, 4, 5, 6, 9]);
    }
}
