//! Random-graph generators with planted community structure and hubs.
//!
//! These stand in for the paper's datasets (see DESIGN.md §3). The key
//! requirement, dictated by the paper's node-locality argument, is that
//! graphs must have **both** hubs (high-degree nodes whose multi-hop
//! neighborhoods cross cluster boundaries and over-smooth) and peripheral
//! nodes (which need depth to see enough signal). A degree-corrected
//! stochastic block model delivers exactly that.

use std::collections::HashSet;

use lasagne_tensor::TensorRng;

use crate::Graph;

/// Configuration of the degree-corrected stochastic block model.
#[derive(Clone, Debug)]
pub struct DcSbmConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of planted communities (= classes).
    pub classes: usize,
    /// Target mean degree.
    pub avg_degree: f64,
    /// Probability an edge stays within its endpoint's community.
    pub homophily: f64,
    /// Pareto exponent of node propensity weights (2–3 gives realistic
    /// heavy-tailed hubs).
    pub power_exponent: f64,
    /// Clip on `max weight / min weight` (keeps the biggest hub bounded).
    pub max_weight_ratio: f64,
}

/// Weighted sampler over a fixed set of node ids: cumulative sums + binary
/// search.
struct WeightedPool {
    ids: Vec<u32>,
    cumulative: Vec<f64>,
}

impl WeightedPool {
    fn new(ids: Vec<u32>, weights: &[f64]) -> WeightedPool {
        let mut cumulative = Vec::with_capacity(ids.len());
        let mut acc = 0.0;
        for &id in &ids {
            acc += weights[id as usize];
            cumulative.push(acc);
        }
        WeightedPool { ids, cumulative }
    }

    fn sample(&self, rng: &mut TensorRng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty pool");
        let t = rng.uniform(0.0, 1.0) as f64 * total;
        let k = self.cumulative.partition_point(|&c| c < t);
        self.ids[k.min(self.ids.len() - 1)]
    }
}

/// Pareto-distributed node weight in `[1, ratio]`.
fn pareto_weight(rng: &mut TensorRng, exponent: f64, ratio: f64) -> f64 {
    let u: f64 = rng.uniform(f32::EPSILON, 1.0) as f64;
    u.powf(-1.0 / (exponent - 1.0)).min(ratio)
}

/// Degree-corrected SBM: returns the graph and the planted community label
/// of every node. Degrees are heavy-tailed (hubs), and a `homophily`
/// fraction of edges stay inside their community.
pub fn dc_sbm(cfg: &DcSbmConfig, rng: &mut TensorRng) -> (Graph, Vec<usize>) {
    assert!(cfg.classes >= 1, "dc_sbm: need at least one class");
    assert!(cfg.nodes >= cfg.classes * 2, "dc_sbm: too few nodes per class");
    assert!(
        (0.0..=1.0).contains(&cfg.homophily),
        "dc_sbm: homophily {} outside [0,1]",
        cfg.homophily
    );
    assert!(cfg.power_exponent > 1.0, "dc_sbm: exponent must exceed 1");

    let n = cfg.nodes;
    // Balanced random community assignment.
    let mut labels: Vec<usize> = (0..n).map(|i| i % cfg.classes).collect();
    rng.shuffle(&mut labels);

    let weights: Vec<f64> = (0..n)
        .map(|_| pareto_weight(rng, cfg.power_exponent, cfg.max_weight_ratio))
        .collect();

    let mut per_class_ids: Vec<Vec<u32>> = vec![Vec::new(); cfg.classes];
    for (v, &c) in labels.iter().enumerate() {
        per_class_ids[c].push(v as u32);
    }
    let class_pools: Vec<WeightedPool> = per_class_ids
        .into_iter()
        .map(|ids| WeightedPool::new(ids, &weights))
        .collect();
    let global_pool = WeightedPool::new((0..n as u32).collect(), &weights);

    let target_edges = (n as f64 * cfg.avg_degree / 2.0).round() as usize;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_edges);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target_edges * 2);
    let mut attempts = 0usize;
    let max_attempts = target_edges * 20 + 1000;
    while edges.len() < target_edges && attempts < max_attempts {
        attempts += 1;
        let u = global_pool.sample(rng);
        let v = if rng.bernoulli(cfg.homophily as f32) {
            class_pools[labels[u as usize]].sample(rng)
        } else if cfg.classes > 1 {
            // Pick a different community uniformly, then a node by weight.
            let mut other = rng.index(cfg.classes);
            if other == labels[u as usize] {
                other = (other + 1) % cfg.classes;
            }
            class_pools[other].sample(rng)
        } else {
            global_pool.sample(rng)
        };
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push(key);
        }
    }
    (Graph::from_edges(n, &edges), labels)
}

/// Barabási–Albert preferential attachment: each new node attaches `m`
/// edges to existing nodes with probability proportional to degree.
/// Produces scale-free degree distributions (pure hub structure, no
/// communities) — used for ablations and generator cross-checks.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut TensorRng) -> Graph {
    assert!(m >= 1 && n > m, "barabasi_albert: need n > m ≥ 1");
    // `targets` holds one entry per half-edge: sampling uniformly from it is
    // sampling nodes proportionally to degree.
    let mut repeated: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Seed clique over the first m+1 nodes.
    for u in 0..=(m as u32) {
        for v in (u + 1)..=(m as u32) {
            edges.push((u, v));
            repeated.push(u);
            repeated.push(v);
        }
    }
    for new in (m + 1)..n {
        let mut chosen: HashSet<u32> = HashSet::with_capacity(m);
        while chosen.len() < m {
            let t = repeated[rng.index(repeated.len())];
            chosen.insert(t);
        }
        for &t in &chosen {
            edges.push((new as u32, t));
            repeated.push(new as u32);
            repeated.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Configuration of the bipartite user–item generator (the Tencent
/// production-dataset substitute; see DESIGN.md §3).
#[derive(Clone, Debug)]
pub struct BipartiteConfig {
    /// Number of item (short-video) nodes — these carry the labels.
    pub items: usize,
    /// Number of user nodes.
    pub users: usize,
    /// Number of item classes.
    pub classes: usize,
    /// Mean number of items each user interacts with.
    pub avg_user_degree: f64,
    /// Pareto exponent of item popularity ("hot" videos).
    pub popularity_exponent: f64,
    /// Probability a user interaction stays inside the user's preferred
    /// class; the remainder goes to globally-popular items of any class,
    /// which is exactly what makes hot items indistinguishable by naive
    /// aggregation (§5.2.1 "Production").
    pub user_focus: f64,
    /// Number of timestamp buckets for per-edge recency attributes (≥ 1,
    /// ≤ 256; each interaction draws one uniformly).
    pub time_buckets: usize,
}

/// Output of [`bipartite_user_item`]: item nodes come first (`0..items`),
/// then user nodes (`items..items+users`).
pub struct BipartiteGraph {
    /// The full bipartite interaction graph.
    pub graph: Graph,
    /// Class label per item node.
    pub item_labels: Vec<usize>,
    /// Preferred class per user node.
    pub user_prefs: Vec<usize>,
    /// Popularity weight per item (Pareto).
    pub item_popularity: Vec<f64>,
    /// The `(item, user_node)` interactions in generation order — the key
    /// for the two attribute vectors below. `graph` re-sorts edges into CSR
    /// order, so downstream edge-feature alignment goes through this list.
    pub interactions: Vec<(u32, u32)>,
    /// Star rating in `1..=5` per interaction: skewed high when the item's
    /// class matches the user's preference, low otherwise — the link
    /// attribute carries class signal that node features alone don't.
    pub edge_ratings: Vec<u8>,
    /// Timestamp bucket in `0..time_buckets` per interaction.
    pub edge_time_buckets: Vec<u8>,
}

/// Generate the bipartite user–item graph.
pub fn bipartite_user_item(cfg: &BipartiteConfig, rng: &mut TensorRng) -> BipartiteGraph {
    assert!(cfg.classes >= 1 && cfg.items >= cfg.classes, "bipartite: sizes");
    assert!(
        (1..=256).contains(&cfg.time_buckets),
        "bipartite: time_buckets must be in 1..=256"
    );
    let mut item_labels: Vec<usize> = (0..cfg.items).map(|i| i % cfg.classes).collect();
    rng.shuffle(&mut item_labels);
    let item_popularity: Vec<f64> = (0..cfg.items)
        .map(|_| pareto_weight(rng, cfg.popularity_exponent, 1000.0))
        .collect();

    let mut per_class: Vec<Vec<u32>> = vec![Vec::new(); cfg.classes];
    for (i, &c) in item_labels.iter().enumerate() {
        per_class[c].push(i as u32);
    }
    let class_pools: Vec<WeightedPool> = per_class
        .into_iter()
        .map(|ids| WeightedPool::new(ids, &item_popularity))
        .collect();
    let global_pool = WeightedPool::new((0..cfg.items as u32).collect(), &item_popularity);

    let user_prefs: Vec<usize> = (0..cfg.users).map(|_| rng.index(cfg.classes)).collect();
    let n = cfg.items + cfg.users;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut edge_ratings: Vec<u8> = Vec::new();
    let mut edge_time_buckets: Vec<u8> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for (u, &pref) in user_prefs.iter().enumerate() {
        let user_node = (cfg.items + u) as u32;
        // Poisson-ish interaction count around the mean, at least 1.
        let k = (cfg.avg_user_degree * (0.5 + rng.uniform(0.0, 1.0) as f64))
            .round()
            .max(1.0) as usize;
        let mut tries = 0;
        let mut added = 0;
        while added < k && tries < k * 10 {
            tries += 1;
            let item = if rng.bernoulli(cfg.user_focus as f32) {
                class_pools[pref].sample(rng)
            } else {
                global_pool.sample(rng)
            };
            if seen.insert((item, user_node)) {
                edges.push((item, user_node));
                // In-preference interactions rate 3..=5, off-preference
                // 1..=3 — the rating is the attribute that separates "my
                // kind of item" from "globally hot item I bounced off".
                let rating = if item_labels[item as usize] == pref {
                    3 + rng.index(3) as u8
                } else {
                    1 + rng.index(3) as u8
                };
                edge_ratings.push(rating);
                edge_time_buckets.push(rng.index(cfg.time_buckets) as u8);
                added += 1;
            }
        }
    }
    BipartiteGraph {
        graph: Graph::from_edges(n, &edges),
        item_labels,
        user_prefs,
        item_popularity,
        interactions: edges,
        edge_ratings,
        edge_time_buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(nodes: usize) -> DcSbmConfig {
        DcSbmConfig {
            nodes,
            classes: 5,
            avg_degree: 8.0,
            homophily: 0.85,
            power_exponent: 2.5,
            max_weight_ratio: 100.0,
        }
    }

    #[test]
    fn dc_sbm_sizes_and_determinism() {
        let mut r1 = TensorRng::seed_from_u64(42);
        let mut r2 = TensorRng::seed_from_u64(42);
        let (g1, l1) = dc_sbm(&cfg(500), &mut r1);
        let (g2, l2) = dc_sbm(&cfg(500), &mut r2);
        assert_eq!(g1.num_nodes(), 500);
        assert_eq!(l1, l2);
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn dc_sbm_hits_target_degree() {
        let mut rng = TensorRng::seed_from_u64(0);
        let (g, _) = dc_sbm(&cfg(2000), &mut rng);
        let avg = g.average_degree();
        assert!((avg - 8.0).abs() < 1.0, "avg degree {avg}");
    }

    #[test]
    fn dc_sbm_homophily_close_to_config() {
        let mut rng = TensorRng::seed_from_u64(1);
        let (g, labels) = dc_sbm(&cfg(2000), &mut rng);
        let h = g.edge_homophily(&labels);
        // The within-class endpoint is drawn by weight, so realized edge
        // homophily tracks the mixing parameter closely.
        assert!((h - 0.85).abs() < 0.06, "homophily {h}");
    }

    #[test]
    fn dc_sbm_has_hubs() {
        let mut rng = TensorRng::seed_from_u64(2);
        let (g, _) = dc_sbm(&cfg(2000), &mut rng);
        let max_deg = *g.degrees().iter().max().unwrap();
        let avg = g.average_degree();
        assert!(
            max_deg as f64 > 5.0 * avg,
            "max degree {max_deg} vs avg {avg} — expected heavy tail"
        );
    }

    #[test]
    fn dc_sbm_balanced_classes() {
        let mut rng = TensorRng::seed_from_u64(3);
        let (_, labels) = dc_sbm(&cfg(500), &mut rng);
        let mut counts = vec![0usize; 5];
        for &l in &labels {
            counts[l] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn ba_degree_sum_and_connectivity() {
        let mut rng = TensorRng::seed_from_u64(4);
        let g = barabasi_albert(300, 3, &mut rng);
        assert_eq!(g.num_nodes(), 300);
        // Seed clique C(4,2)=6 + 296*3 new edges (dedup can only reduce the
        // clique part, which is exact).
        assert_eq!(g.num_edges(), 6 + 296 * 3);
        let (_, comps) = crate::connected_components(&g);
        assert_eq!(comps, 1, "BA graphs are connected by construction");
    }

    #[test]
    fn ba_is_scale_free_ish() {
        let mut rng = TensorRng::seed_from_u64(5);
        let g = barabasi_albert(2000, 2, &mut rng);
        let max_deg = *g.degrees().iter().max().unwrap();
        assert!(max_deg > 40, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn bipartite_structure() {
        let mut rng = TensorRng::seed_from_u64(6);
        let b = bipartite_user_item(
            &BipartiteConfig {
                items: 300,
                users: 200,
                classes: 6,
                avg_user_degree: 5.0,
                popularity_exponent: 2.0,
                user_focus: 0.8,
                time_buckets: 8,
            },
            &mut rng,
        );
        assert_eq!(b.graph.num_nodes(), 500);
        assert_eq!(b.item_labels.len(), 300);
        assert_eq!(b.user_prefs.len(), 200);
        // Bipartite: every edge joins an item (< 300) and a user (≥ 300).
        for &(u, v) in b.graph.edges() {
            assert!((u as usize) < 300 && (v as usize) >= 300);
        }
    }

    #[test]
    fn bipartite_edge_attributes_are_seed_stable_and_in_range() {
        let cfg = BipartiteConfig {
            items: 200,
            users: 150,
            classes: 5,
            avg_user_degree: 4.0,
            popularity_exponent: 2.0,
            user_focus: 0.75,
            time_buckets: 12,
        };
        let a = bipartite_user_item(&cfg, &mut TensorRng::seed_from_u64(11));
        let b = bipartite_user_item(&cfg, &mut TensorRng::seed_from_u64(11));
        // Same seed → bitwise-identical structure AND attributes.
        assert_eq!(a.interactions, b.interactions);
        assert_eq!(a.edge_ratings, b.edge_ratings);
        assert_eq!(a.edge_time_buckets, b.edge_time_buckets);
        assert_eq!(a.interactions.len(), a.graph.num_edges());
        assert_eq!(a.edge_ratings.len(), a.interactions.len());
        assert_eq!(a.edge_time_buckets.len(), a.interactions.len());
        for (&r, &t) in a.edge_ratings.iter().zip(&a.edge_time_buckets) {
            assert!((1..=5).contains(&r), "rating {r} out of range");
            assert!((t as usize) < 12, "bucket {t} out of range");
        }
        // Ratings carry the class signal: in-preference edges rate 3..=5.
        for (e, &(item, user)) in a.interactions.iter().enumerate() {
            let pref = a.user_prefs[user as usize - 200];
            let rating = a.edge_ratings[e];
            if a.item_labels[item as usize] == pref {
                assert!(rating >= 3, "in-pref edge rated {rating}");
            } else {
                assert!(rating <= 3, "off-pref edge rated {rating}");
            }
        }
    }

    #[test]
    fn bipartite_hot_items_exist() {
        let mut rng = TensorRng::seed_from_u64(7);
        let b = bipartite_user_item(
            &BipartiteConfig {
                items: 300,
                users: 1000,
                classes: 6,
                avg_user_degree: 6.0,
                popularity_exponent: 1.8,
                user_focus: 0.7,
                time_buckets: 8,
            },
            &mut rng,
        );
        let item_degrees: Vec<usize> = (0..300).map(|i| b.graph.degree(i)).collect();
        let max = *item_degrees.iter().max().unwrap();
        let mean = item_degrees.iter().sum::<usize>() as f64 / 300.0;
        assert!(
            max as f64 > 4.0 * mean,
            "hot item degree {max} vs mean {mean}"
        );
    }
}
