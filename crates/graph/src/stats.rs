//! Structural statistics used to sanity-check the generators against the
//! real datasets they substitute for: degree distribution summaries,
//! degree assortativity and k-core decomposition.

use crate::Graph;

/// Summary of a degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree (hub size).
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Fraction of nodes whose degree exceeds 4× the mean ("hubs").
    pub hub_fraction: f64,
}

/// Degree distribution summary.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let mut degrees = g.degrees();
    if degrees.is_empty() {
        return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0, hub_fraction: 0.0 };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let hubs = degrees.iter().filter(|&&d| d as f64 > 4.0 * mean).count();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean,
        median: degrees[n / 2],
        hub_fraction: hubs as f64 / n as f64,
    }
}

/// Histogram of degrees in log₂ buckets `[1, 2), [2, 4), [4, 8), …` plus a
/// zero bucket; returns `(bucket_lower_bound, count)` pairs.
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<(usize, usize)> = vec![(0, 0)];
    for d in g.degrees() {
        if d == 0 {
            buckets[0].1 += 1;
            continue;
        }
        let b = (usize::BITS - 1 - d.leading_zeros()) as usize; // floor(log2 d)
        while buckets.len() <= b + 1 {
            let lower = 1usize << (buckets.len() - 1);
            buckets.push((lower, 0));
        }
        buckets[b + 1].1 += 1;
    }
    buckets
}

/// Pearson degree assortativity: correlation of endpoint degrees over all
/// edges. Positive = hubs link to hubs; social networks are typically
/// positive, citation/biological networks negative. Returns 0 for graphs
/// with no degree variance.
pub fn degree_assortativity(g: &Graph) -> f64 {
    let m = g.num_edges();
    if m == 0 {
        return 0.0;
    }
    // Treat each undirected edge as two ordered pairs (the standard Newman
    // formulation).
    let mut sum_xy = 0.0f64;
    let mut sum_x = 0.0f64;
    let mut sum_x2 = 0.0f64;
    let count = (2 * m) as f64;
    for &(u, v) in g.edges() {
        let du = g.degree(u as usize) as f64;
        let dv = g.degree(v as usize) as f64;
        sum_xy += 2.0 * du * dv;
        sum_x += du + dv;
        sum_x2 += du * du + dv * dv;
    }
    let mean = sum_x / count;
    let var = sum_x2 / count - mean * mean;
    if var <= 1e-12 {
        return 0.0;
    }
    (sum_xy / count - mean * mean) / var
}

/// K-core decomposition: `core[v]` is the largest k such that `v` belongs
/// to a subgraph where every node has degree ≥ k (Matula–Beck peeling,
/// O(N + M)).
pub fn k_core(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut degree = g.degrees();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue by current degree.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }
    let mut core = vec![0usize; n];
    let mut removed = vec![false; n];
    let mut k = 0usize;
    let mut processed = 0usize;
    while processed < n {
        // Find the lowest non-empty bucket.
        let mut d = 0;
        loop {
            if d >= buckets.len() {
                // All remaining nodes were moved to other buckets; rebuild.
                unreachable!("bucket queue exhausted before all nodes processed");
            }
            if let Some(&v) = buckets[d].last() {
                if removed[v] || degree[v] != d {
                    buckets[d].pop(); // stale entry
                    continue;
                }
                break;
            }
            d += 1;
        }
        k = k.max(d);
        let v = buckets[d].pop().expect("checked non-empty");
        removed[v] = true;
        core[v] = k;
        processed += 1;
        for &u in g.neighbors(v) {
            let u = u as usize;
            if !removed[u] && degree[u] > d {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize) -> Graph {
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn degree_stats_on_star() {
        let s = degree_stats(&star(11));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.median, 1);
        assert!((s.mean - 20.0 / 11.0).abs() < 1e-9);
        // The center is the single hub (10 > 4·1.8).
        assert!((s.hub_fraction - 1.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let g = star(9); // center degree 8, leaves degree 1
        let h = degree_histogram(&g);
        // Buckets: 0:[0], 1:[1,2), 2:[2,4), 4:[4,8), 8:[8,16)
        assert_eq!(h[0], (0, 0));
        assert_eq!(h[1], (1, 8)); // eight leaves
        let last = *h.last().unwrap();
        assert_eq!(last, (8, 1)); // the center
    }

    #[test]
    fn star_is_disassortative() {
        // Hubs connecting to leaves only ⇒ negative assortativity.
        assert!(degree_assortativity(&star(20)) < -0.5);
    }

    #[test]
    fn regular_ring_has_no_degree_variance() {
        let edges: Vec<(u32, u32)> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let ring = Graph::from_edges(10, &edges);
        assert_eq!(degree_assortativity(&ring), 0.0);
    }

    #[test]
    fn k_core_of_clique_plus_tail() {
        // K4 (nodes 0-3) with a tail 3-4-5.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
                (3, 4), (4, 5),
            ],
        );
        let core = k_core(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3], "clique nodes are 3-core");
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn k_core_of_ring_is_two() {
        let edges: Vec<(u32, u32)> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
        let g = Graph::from_edges(8, &edges);
        assert!(k_core(&g).iter().all(|&c| c == 2));
    }

    #[test]
    fn generators_produce_heavy_tails() {
        use crate::generators::{dc_sbm, DcSbmConfig};
        use lasagne_tensor::TensorRng;
        let mut rng = TensorRng::seed_from_u64(0);
        let (g, _) = dc_sbm(
            &DcSbmConfig {
                nodes: 2000,
                classes: 5,
                avg_degree: 8.0,
                homophily: 0.85,
                power_exponent: 2.0,
                max_weight_ratio: 100.0,
            },
            &mut rng,
        );
        let s = degree_stats(&g);
        assert!(s.hub_fraction > 0.005, "hub fraction {}", s.hub_fraction);
        assert!(s.max > 10 * s.median, "max {} vs median {}", s.max, s.median);
    }
}
