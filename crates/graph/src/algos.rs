//! Graph algorithms backing the paper's analyses.

use std::collections::VecDeque;

use lasagne_tensor::TensorRng;

use crate::error::GraphError;
use crate::Graph;

/// BFS hop distances from `source`; unreachable nodes get `u32::MAX`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<u32> {
    assert!(source < g.num_nodes(), "bfs_distances: source out of range");
    let mut dist = vec![u32::MAX; g.num_nodes()];
    dist[source] = 0;
    let mut queue = VecDeque::with_capacity(64);
    queue.push_back(source as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u as usize) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components; returns `(component_id_per_node, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = count;
        queue.push_back(start as u32);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u as usize) {
                if comp[v as usize] == usize::MAX {
                    comp[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Average Path Length (Eq 8 of the paper): the mean shortest-path distance
/// over connected node pairs. The paper uses APL to justify its depth-sweep
/// range ("each node theoretically should capture the max L-hop
/// neighborhood").
///
/// Exhaustive BFS from every node is O(N·(N+M)); when `sample_sources` is
/// `Some(s)` only `s` random sources are used (unbiased for the pair
/// average on connected graphs).
pub fn average_path_length(
    g: &Graph,
    sample_sources: Option<usize>,
    rng: &mut TensorRng,
) -> f64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    let sources: Vec<usize> = match sample_sources {
        Some(s) if s < n => rng.sample_indices(n, s),
        _ => (0..n).collect(),
    };
    let mut total = 0u64;
    let mut pairs = 0u64;
    for &s in &sources {
        for (v, &d) in bfs_distances(g, s).iter().enumerate() {
            if v != s && d != u32::MAX {
                total += d as u64;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// PageRank by power iteration with damping `d` (the paper measures node
/// locality with "the page rank (PR) score", §5.2.2). Dangling mass is
/// redistributed uniformly; the result sums to 1.
pub fn pagerank(g: &Graph, damping: f32, iterations: usize) -> Vec<f32> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let inv_n = 1.0 / n as f32;
    let mut rank = vec![inv_n; n];
    let degrees = g.degrees();
    let mut next = vec![0.0f32; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|v| *v = 0.0);
        let mut dangling = 0.0f32;
        for u in 0..n {
            if degrees[u] == 0 {
                dangling += rank[u];
                continue;
            }
            let share = rank[u] / degrees[u] as f32;
            for &v in g.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let base = (1.0 - damping) * inv_n + damping * dangling * inv_n;
        for v in next.iter_mut() {
            *v = base + damping * *v;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Average local clustering coefficient (triangle density around each node).
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0f64;
    for v in 0..n {
        let nb = g.neighbors(v);
        let k = nb.len();
        if k < 2 {
            continue;
        }
        let mut links = 0usize;
        for (ai, &a) in nb.iter().enumerate() {
            let a_nb = g.neighbors(a as usize);
            for &b in &nb[ai + 1..] {
                // Neighbor lists are sorted (CSR invariant) — binary search.
                if a_nb.binary_search(&b).is_ok() {
                    links += 1;
                }
            }
        }
        total += 2.0 * links as f64 / (k * (k - 1)) as f64;
    }
    total / n as f64
}

/// Partition nodes into `k` balanced parts by seeded BFS growth — the
/// lightweight METIS stand-in behind the ClusterGCN baseline. Every node is
/// assigned to exactly one part; parts are grown breadth-first from random
/// seeds so they are locally coherent. Every part holds at most
/// `ceil(n / k)` nodes; parts may be empty when the BFS fronts exhaust the
/// graph early (e.g. `n` barely above `k`).
///
/// The algorithm is serial and consumes exactly one `rng.shuffle`, so the
/// result depends only on `(g, k, rng state)` — never on `LASAGNE_THREADS`.
///
/// Errors with [`GraphError::InvalidPartitionCount`] unless
/// `1 <= k <= max(n, 1)`.
pub fn partition_bfs(
    g: &Graph,
    k: usize,
    rng: &mut TensorRng,
) -> Result<Vec<Vec<usize>>, GraphError> {
    let n = g.num_nodes();
    if k < 1 || k > n.max(1) {
        return Err(GraphError::InvalidPartitionCount { k, n });
    }
    let cap = n.div_ceil(k);
    let mut part_of = vec![usize::MAX; n];
    let mut parts: Vec<Vec<usize>> = vec![Vec::with_capacity(cap); k];
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);

    let mut queue = VecDeque::new();
    let mut cursor = 0usize; // scans `order` for unassigned seeds
    for p in 0..k {
        // Seed: next unassigned node.
        while cursor < n && part_of[order[cursor]] != usize::MAX {
            cursor += 1;
        }
        if cursor >= n {
            break;
        }
        let seed = order[cursor];
        part_of[seed] = p;
        parts[p].push(seed);
        queue.clear();
        queue.push_back(seed as u32);
        while let Some(u) = queue.pop_front() {
            if parts[p].len() >= cap {
                break;
            }
            for &v in g.neighbors(u as usize) {
                if parts[p].len() >= cap {
                    break;
                }
                if part_of[v as usize] == usize::MAX {
                    part_of[v as usize] = p;
                    parts[p].push(v as usize);
                    queue.push_back(v);
                }
            }
        }
    }
    // Leftovers (disconnected remainders): round-robin into the lightest part.
    for v in 0..n {
        if part_of[v] == usize::MAX {
            let lightest = (0..k).min_by_key(|&p| parts[p].len()).expect("k >= 1");
            part_of[v] = lightest;
            parts[lightest].push(v);
        }
    }
    Ok(parts)
}

/// Uniformly sample up to `k` neighbors of `v` without replacement (the
/// GraphSAGE neighborhood sampler). Returns all neighbors when `degree ≤ k`.
pub fn sample_neighbors(g: &Graph, v: usize, k: usize, rng: &mut TensorRng) -> Vec<u32> {
    let nb = g.neighbors(v);
    if nb.len() <= k {
        return nb.to_vec();
    }
    rng.sample_indices(nb.len(), k)
        .into_iter()
        .map(|i| nb[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_on_path() {
        let d = bfs_distances(&path5(), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn components_counted() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn apl_exact_on_path() {
        // Path of 5: pair distances sum = 2*(1+2+3+4 + 1+2+3 + 1+2 + 1) = 40
        // over 20 ordered pairs → APL = 2.0.
        let mut rng = TensorRng::seed_from_u64(0);
        let apl = average_path_length(&path5(), None, &mut rng);
        assert!((apl - 2.0).abs() < 1e-9);
    }

    #[test]
    fn apl_sampled_close_to_exact() {
        let mut rng = TensorRng::seed_from_u64(1);
        // A ring: exact APL is (1+2+...+floor(n/2) doubled appropriately);
        // compare sampled against exhaustive instead of closed form.
        let edges: Vec<(u32, u32)> = (0..30u32).map(|i| (i, (i + 1) % 30)).collect();
        let g = Graph::from_edges(30, &edges);
        let exact = average_path_length(&g, None, &mut rng);
        let sampled = average_path_length(&g, Some(10), &mut rng);
        assert!((exact - sampled).abs() < 0.5, "exact {exact} sampled {sampled}");
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_highest() {
        // Star graph: center must dominate.
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pr = pagerank(&g, 0.85, 100);
        assert!((pr.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        for leaf in 1..5 {
            assert!(pr[0] > pr[leaf]);
        }
    }

    #[test]
    fn pagerank_uniform_on_ring() {
        let edges: Vec<(u32, u32)> = (0..6u32).map(|i| (i, (i + 1) % 6)).collect();
        let g = Graph::from_edges(6, &edges);
        let pr = pagerank(&g, 0.85, 100);
        for &p in &pr {
            assert!((p - 1.0 / 6.0).abs() < 1e-4);
        }
    }

    #[test]
    fn clustering_triangle_vs_path() {
        let triangle = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((clustering_coefficient(&triangle) - 1.0).abs() < 1e-9);
        assert_eq!(clustering_coefficient(&path5()), 0.0);
    }

    #[test]
    fn partition_covers_all_nodes_disjointly() {
        let mut rng = TensorRng::seed_from_u64(2);
        let edges: Vec<(u32, u32)> = (0..99u32).map(|i| (i, i + 1)).collect();
        let g = Graph::from_edges(100, &edges);
        let parts = partition_bfs(&g, 4, &mut rng).unwrap();
        let mut seen = vec![false; 100];
        for part in &parts {
            for &v in part {
                assert!(!seen[v], "node {v} in two parts");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Balanced within the ceiling.
        for part in &parts {
            assert!(part.len() <= 25);
        }
    }

    #[test]
    fn partition_single_part_is_everything() {
        let mut rng = TensorRng::seed_from_u64(3);
        let parts = partition_bfs(&path5(), 1, &mut rng).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 5);
    }

    #[test]
    fn partition_bad_k_is_typed_not_a_panic() {
        // Regression for the old `assert!(k >= 1 && k <= n.max(1))`.
        let mut rng = TensorRng::seed_from_u64(5);
        let g = path5();
        assert_eq!(
            partition_bfs(&g, 0, &mut rng),
            Err(GraphError::InvalidPartitionCount { k: 0, n: 5 })
        );
        assert_eq!(
            partition_bfs(&g, 6, &mut rng),
            Err(GraphError::InvalidPartitionCount { k: 6, n: 5 })
        );
        // Empty graph: only k=1 is valid and yields one empty part.
        let empty = Graph::from_edges(0, &[]);
        assert_eq!(partition_bfs(&empty, 1, &mut rng), Ok(vec![Vec::new()]));
        assert!(partition_bfs(&empty, 2, &mut rng).is_err());
    }

    #[test]
    fn neighbor_sampling_bounds() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut rng = TensorRng::seed_from_u64(4);
        let s = sample_neighbors(&g, 0, 3, &mut rng);
        assert_eq!(s.len(), 3);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        // Degree ≤ k returns everything.
        assert_eq!(sample_neighbors(&g, 1, 3, &mut rng), vec![0]);
    }
}
