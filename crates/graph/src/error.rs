//! Typed errors for graph-level operations.
//!
//! The repo rule is typed-errors-over-panics for every failure a caller can
//! plausibly hit with bad runtime input; asserts stay reserved for internal
//! invariants. `partition_bfs` used to assert on a bad part count — callers
//! that take `k` from a CLI flag or a config file get a `Result` instead.

use std::fmt;

/// Errors from graph algorithms with caller-supplied parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Requested part count is outside `1..=max(n, 1)`.
    InvalidPartitionCount { k: usize, n: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidPartitionCount { k, n } => {
                write!(f, "invalid partition count k={k} for a graph of {n} nodes (want 1..={})", (*n).max(1))
            }
        }
    }
}

impl std::error::Error for GraphError {}
