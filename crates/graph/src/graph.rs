//! The [`Graph`] type: a simple undirected graph with a cached symmetric CSR
//! adjacency, the structure every model propagates over.

use lasagne_sparse::Csr;

/// Undirected simple graph (no self-loops, no multi-edges).
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    /// Canonical unique edge list, `u < v`.
    edges: Vec<(u32, u32)>,
    /// Symmetric unweighted adjacency (both directions stored).
    adj: Csr,
}

impl Graph {
    /// Build from an edge list. Self-loops are dropped, duplicates (in
    /// either orientation) are merged.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut canon: Vec<(u32, u32)> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        for &(u, v) in &canon {
            assert!(
                (v as usize) < n,
                "from_edges: edge ({u},{v}) outside 0..{n}"
            );
        }
        let mut coo = Vec::with_capacity(canon.len() * 2);
        for &(u, v) in &canon {
            coo.push((u, v, 1.0));
            coo.push((v, u, 1.0));
        }
        let adj = Csr::from_coo(n, n, &coo);
        Graph { n, edges: canon, adj }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical `(u, v)` edge list with `u < v`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// The symmetric unweighted adjacency as CSR.
    pub fn adjacency(&self) -> &Csr {
        &self.adj
    }

    /// The GCN propagation operator `Â = D̃^{-1/2}(A+I)D̃^{-1/2}` (Eq 1).
    pub fn normalized_adjacency(&self) -> Csr {
        self.adj.gcn_normalize()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        self.adj.row_indices(v)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_nnz(v)
    }

    /// Degrees of all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|v| self.degree(v)).collect()
    }

    /// Mean degree (`2m / n`).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Induced subgraph on `nodes` (renumbered to `0..nodes.len()`, in the
    /// given order). Used by the ClusterGCN / GraphSAINT / inductive-split
    /// code paths.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> Graph {
        let mut inv = vec![u32::MAX; self.n];
        for (new, &old) in nodes.iter().enumerate() {
            inv[old] = new as u32;
        }
        let mut edges = Vec::new();
        for &(u, v) in &self.edges {
            let (nu, nv) = (inv[u as usize], inv[v as usize]);
            if nu != u32::MAX && nv != u32::MAX {
                edges.push((nu, nv));
            }
        }
        Graph::from_edges(nodes.len(), &edges)
    }

    /// Fraction of edges whose endpoints share a label (edge homophily).
    pub fn edge_homophily(&self, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), self.n, "edge_homophily: label count");
        if self.edges.is_empty() {
            return 0.0;
        }
        let same = self
            .edges
            .iter()
            .filter(|&&(u, v)| labels[u as usize] == labels[v as usize])
            .count();
        same as f64 / self.edges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.average_degree(), 1.5);
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn dedup_and_orientation() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edges(), &[(0, 1)]);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = path4();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn normalized_adjacency_shape() {
        let g = path4();
        let a = g.normalized_adjacency();
        assert_eq!(a.shape(), (4, 4));
        // Self-loops present on the diagonal.
        assert!(a.to_dense()[(0, 0)] > 0.0);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = path4();
        let s = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2); // 1-2 and 2-3 survive, renumbered
        assert_eq!(s.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn homophily_counts_same_label_edges() {
        let g = path4();
        assert_eq!(g.edge_homophily(&[0, 0, 1, 1]), 2.0 / 3.0);
        assert_eq!(g.edge_homophily(&[0, 0, 0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_edge_panics() {
        let _ = Graph::from_edges(2, &[(0, 5)]);
    }
}
