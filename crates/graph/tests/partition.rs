//! Property suite for the partitioner and the `Partitioning` layer
//! (ISSUE 9 satellite): coverage, balance, determinism across thread
//! counts, shadow-checked halos, k=1 degeneration, typed bad-k errors,
//! and the operator-block SpMM bitwise lemma.

use std::collections::BTreeSet;

use lasagne_graph::{generators, partition_bfs, Graph, GraphError, Partitioning};
use lasagne_tensor::{Tensor, TensorRng};

fn sbm(nodes: usize, seed: u64) -> Graph {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, _labels) = generators::dc_sbm(
        &generators::DcSbmConfig {
            nodes,
            classes: 4,
            avg_degree: 6.0,
            homophily: 0.8,
            power_exponent: 2.5,
            max_weight_ratio: 50.0,
        },
        &mut rng,
    );
    g
}

fn star(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges)
}

fn path(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
    Graph::from_edges(n, &edges)
}

#[test]
fn every_node_in_exactly_one_part() {
    for (g, seed) in [(sbm(300, 1), 10u64), (star(64), 11), (path(97), 12)] {
        for k in [1usize, 2, 5, 13] {
            let mut rng = TensorRng::seed_from_u64(seed);
            let p = Partitioning::new(&g, k, &mut rng).unwrap();
            assert_eq!(p.num_parts(), k);
            let mut owner = vec![None; g.num_nodes()];
            for (pi, part) in p.parts().iter().enumerate() {
                for &v in &part.core {
                    assert!(owner[v].is_none(), "node {v} owned twice (k={k})");
                    owner[v] = Some(pi);
                }
            }
            for (v, o) in owner.iter().enumerate() {
                let o = o.unwrap_or_else(|| panic!("node {v} unowned (k={k})"));
                assert_eq!(p.part_of()[v] as usize, o, "part_of mismatch at {v}");
            }
        }
    }
}

#[test]
fn parts_respect_the_balance_bound() {
    // BFS growth caps parts at ceil(n/k) and the leftover pass only tops up
    // parts strictly below the cap, so the bound holds unconditionally.
    for (g, seed) in [(sbm(300, 2), 20u64), (star(50), 21), (path(101), 22)] {
        let n = g.num_nodes();
        for k in [1usize, 3, 7, 16] {
            let mut rng = TensorRng::seed_from_u64(seed);
            let p = Partitioning::new(&g, k, &mut rng).unwrap();
            let cap = n.div_ceil(k);
            for part in p.parts() {
                assert!(part.core.len() <= cap, "part of {} > cap {cap} (k={k})", part.core.len());
            }
        }
    }
}

#[test]
fn partitioning_is_identical_across_thread_counts() {
    // partition_bfs is serial by design; this pins the contract that the
    // layout is a function of (graph, k, seed) only, never of the pool size.
    let g = sbm(400, 3);
    let reference: Vec<_> = {
        lasagne_par::set_threads(1);
        let mut rng = TensorRng::seed_from_u64(30);
        let p = Partitioning::new(&g, 8, &mut rng).unwrap();
        p.parts().to_vec()
    };
    for threads in [1usize, 4] {
        lasagne_par::set_threads(threads);
        let mut rng = TensorRng::seed_from_u64(30);
        let p = Partitioning::new(&g, 8, &mut rng).unwrap();
        assert_eq!(p.parts(), &reference[..], "layout changed at {threads} threads");
    }
    lasagne_par::set_threads(1);
}

#[test]
fn halo_matches_shadow_one_hop_boundary() {
    // Shadow implementation: brute-force one-hop boundary per part.
    for (g, seed) in [(sbm(250, 4), 40u64), (star(40), 41), (path(60), 42)] {
        for k in [2usize, 4, 9] {
            let mut rng = TensorRng::seed_from_u64(seed);
            let p = Partitioning::new(&g, k, &mut rng).unwrap();
            for part in p.parts() {
                let core: BTreeSet<usize> = part.core.iter().copied().collect();
                let mut shadow = BTreeSet::new();
                for v in 0..g.num_nodes() {
                    if core.contains(&v) {
                        continue;
                    }
                    if g.neighbors(v).iter().any(|&u| core.contains(&(u as usize))) {
                        shadow.insert(v);
                    }
                }
                let shadow: Vec<usize> = shadow.into_iter().collect();
                assert_eq!(part.halo, shadow, "halo != one-hop boundary (k={k})");
                // locals() is the sorted disjoint union.
                let locals = part.locals();
                assert!(locals.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(locals.len(), part.core.len() + part.halo.len());
            }
        }
    }
}

#[test]
fn k1_degenerates_to_the_resident_path() {
    let g = sbm(120, 5);
    let mut rng = TensorRng::seed_from_u64(50);
    let p = Partitioning::new(&g, 1, &mut rng).unwrap();
    assert_eq!(p.num_parts(), 1);
    assert_eq!(p.part(0).core, (0..120).collect::<Vec<_>>());
    assert!(p.part(0).halo.is_empty());
    // The single operator block IS the resident operator.
    let a_hat = g.normalized_adjacency();
    let block = p.operator_block(&a_hat, 0);
    assert_eq!(block.cols, (0..120).collect::<Vec<_>>());
    assert_eq!(block.csr.to_dense().as_slice(), a_hat.to_dense().as_slice());
}

#[test]
fn bad_k_is_a_typed_error() {
    let g = path(10);
    let mut rng = TensorRng::seed_from_u64(60);
    for k in [0usize, 11, 10_000] {
        match Partitioning::new(&g, k, &mut rng) {
            Err(GraphError::InvalidPartitionCount { k: ek, n }) => {
                assert_eq!((ek, n), (k, 10));
            }
            other => panic!("k={k}: expected typed error, got {other:?}"),
        }
    }
    // The raw partitioner errors identically.
    assert!(partition_bfs(&g, 0, &mut rng).is_err());
}

#[test]
fn operator_block_columns_stay_within_core_plus_halo() {
    // For graph-local operators (Â couples a node to itself + neighbors)
    // the touched columns are a subset of core ∪ halo — the halo exchange
    // contract: one hop of ghosts suffices for one SpMM.
    let g = sbm(200, 6);
    let a_hat = g.normalized_adjacency();
    let mut rng = TensorRng::seed_from_u64(70);
    let p = Partitioning::new(&g, 6, &mut rng).unwrap();
    for pi in 0..p.num_parts() {
        let block = p.operator_block(&a_hat, pi);
        let locals: BTreeSet<usize> = p.part(pi).locals().into_iter().collect();
        for &c in &block.cols {
            assert!(locals.contains(&c), "block column {c} outside core ∪ halo");
        }
    }
}

#[test]
fn operator_block_spmm_is_bitwise_rows_of_full_spmm() {
    // The lemma the out-of-core evaluator rests on: a monotone column remap
    // preserves each row's stored-nonzero order, and SpMM accumulates each
    // output element over exactly that order from +0.0 — so the block
    // product equals the core rows of the full product bit for bit, at any
    // thread count.
    let g = sbm(180, 7);
    let n = g.num_nodes();
    for op in [g.normalized_adjacency(), g.adjacency().clone()] {
        for threads in [1usize, 4] {
            lasagne_par::set_threads(threads);
            let mut xr = TensorRng::seed_from_u64(80);
            let x = xr.uniform_tensor(n, 9, -1.0, 1.0);
            let full = op.spmm(&x);
            let mut rng = TensorRng::seed_from_u64(81);
            let p = Partitioning::new(&g, 5, &mut rng).unwrap();
            for pi in 0..p.num_parts() {
                let block = p.operator_block(&op, pi);
                let x_ghost = x.gather_rows(&block.cols);
                let ours = block.csr.spmm(&x_ghost);
                for (local, &row) in p.part(pi).core.iter().enumerate() {
                    for c in 0..9 {
                        assert_eq!(
                            ours.get(local, c).to_bits(),
                            full.get(row, c).to_bits(),
                            "row {row} col {c} differs (threads={threads})"
                        );
                    }
                }
            }
        }
    }
    lasagne_par::set_threads(1);
}

#[test]
fn empty_parts_are_allowed_and_sink_last() {
    // n barely above k: BFS fronts can exhaust the graph before every part
    // seeds; empty parts are kept (deterministic arity) and ordered last.
    let g = star(5);
    let mut rng = TensorRng::seed_from_u64(90);
    let p = Partitioning::new(&g, 4, &mut rng).unwrap();
    assert_eq!(p.num_parts(), 4);
    let total: usize = p.parts().iter().map(|b| b.core.len()).sum();
    assert_eq!(total, 5);
    let mut seen_empty = false;
    for part in p.parts() {
        if part.core.is_empty() {
            seen_empty = true;
            assert!(part.halo.is_empty());
        } else {
            assert!(!seen_empty, "non-empty part after an empty one");
        }
    }
}

#[test]
fn gather_rows_tensor_is_a_bitwise_copy() {
    // Partition eval moves feature rows around with Tensor::gather_rows;
    // pin that it is a pure row copy.
    let mut rng = TensorRng::seed_from_u64(100);
    let x = rng.uniform_tensor(17, 5, -3.0, 3.0);
    let rows = [3usize, 0, 16, 3];
    let gathered = Tensor::gather_rows(&x, &rows);
    for (i, &r) in rows.iter().enumerate() {
        for c in 0..5 {
            assert_eq!(gathered.get(i, c).to_bits(), x.get(r, c).to_bits());
        }
    }
}
