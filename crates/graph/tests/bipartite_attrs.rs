//! Property suite for the bipartite generator's per-edge attributes: same
//! seed must mean bitwise-identical structure and attributes for any config,
//! and the attribute vectors must stay aligned with the interaction list.

use lasagne_graph::generators::{bipartite_user_item, BipartiteConfig};
use lasagne_tensor::TensorRng;
use lasagne_testkit::{prop_assert, prop_assert_eq, prop_check};

prop_check! {
    cases = 64,
    fn same_seed_is_bitwise_stable(
        seed in 0u64..10_000,
        items in 20usize..120,
        users in 10usize..100,
        buckets in 1usize..32
    ) {
        let cfg = BipartiteConfig {
            items,
            users,
            classes: 4,
            avg_user_degree: 3.0,
            popularity_exponent: 2.0,
            user_focus: 0.7,
            time_buckets: buckets,
        };
        let a = bipartite_user_item(&cfg, &mut TensorRng::seed_from_u64(seed));
        let b = bipartite_user_item(&cfg, &mut TensorRng::seed_from_u64(seed));
        prop_assert_eq!(a.graph.edges(), b.graph.edges());
        prop_assert_eq!(&a.interactions, &b.interactions);
        prop_assert_eq!(&a.edge_ratings, &b.edge_ratings);
        prop_assert_eq!(&a.edge_time_buckets, &b.edge_time_buckets);
        // One attribute pair per interaction, each in its declared range.
        prop_assert_eq!(a.interactions.len(), a.graph.num_edges());
        prop_assert_eq!(a.edge_ratings.len(), a.interactions.len());
        prop_assert_eq!(a.edge_time_buckets.len(), a.interactions.len());
        prop_assert!(a.edge_ratings.iter().all(|&r| (1..=5).contains(&r)));
        prop_assert!(a.edge_time_buckets.iter().all(|&t| (t as usize) < buckets));
    }
}
