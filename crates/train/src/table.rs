//! Plain-text table rendering for the regeneration binaries: each prints
//! the same rows the paper's tables report.

use std::fmt::Write as _;

use crate::error::{TrainError, TrainResult};

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a caption and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count); panics on a ragged
    /// row — use [`Table::try_row`] to handle that as a value.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        if let Err(e) = self.try_row(cells) {
            panic!("{e}");
        }
        self
    }

    /// Append one row, reporting a ragged row as a typed error instead of
    /// panicking.
    pub fn try_row(&mut self, cells: Vec<String>) -> TrainResult<&mut Self> {
        if cells.len() != self.headers.len() {
            return Err(TrainError::InvalidConfig(format!(
                "Table::row: {} cells for {} columns",
                cells.len(),
                self.headers.len()
            )));
        }
        self.rows.push(cells);
        Ok(self)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let pad = w - cell.chars().count();
                s.push_str(cell);
                s.extend(std::iter::repeat_n(' ', pad));
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Model", "Cora"]);
        t.row(vec!["GCN".into(), "81.8±0.5".into()]);
        t.row(vec!["Lasagne (Weighted)".into(), "84.1±0.2".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("GCN"));
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, two rows, plus the title line.
        assert_eq!(lines.len(), 5);
        // The accuracy column starts at the same offset in both data rows.
        let off3 = lines[3].find("81.8").unwrap();
        let off4 = lines[4].find("84.1").unwrap();
        assert_eq!(off3, off4);
    }

    #[test]
    fn tracks_row_count() {
        let mut t = Table::new("", &["a"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn rejects_ragged_rows() {
        Table::new("", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn try_row_reports_ragged_rows_as_typed_errors() {
        let mut t = Table::new("", &["a", "b"]);
        let err = t.try_row(vec!["only-one".into()]).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)));
        assert!(err.to_string().contains("1 cells for 2 columns"), "{err}");
        assert!(t.is_empty(), "failed row must not be appended");
        t.try_row(vec!["x".into(), "y".into()]).unwrap();
        assert_eq!(t.len(), 1);
    }
}
