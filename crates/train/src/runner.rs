//! Multi-seed experiment runner: the paper runs "each method 10 times and
//! reports the mean accuracy and the standard deviation".
//!
//! The fallible entry point [`run_seeds_fallible`] isolates per-seed
//! failures: a seed whose training diverges is retried once from scratch,
//! and if it fails again the cell degrades gracefully — the failure is
//! recorded (and rendered as `n/a` when *every* seed failed) instead of
//! poisoning the whole table with a panic.

use lasagne_testkit::Json;

use crate::error::{TrainError, TrainResult};
use crate::trainer::FitResult;

/// Aggregate of repeated seeded runs.
#[derive(Clone, Debug)]
pub struct SeedSummary {
    /// Test accuracies (fraction in `[0,1]`), one per *successful* seed.
    pub accs: Vec<f64>,
    /// Mean test accuracy over successful seeds.
    pub mean: f64,
    /// Population standard deviation over successful seeds.
    pub std: f64,
    /// Mean per-epoch optimization seconds across successful runs.
    pub mean_epoch_seconds: f64,
    /// Mean epochs until early stop across successful runs.
    pub mean_epochs: f64,
    /// Seeds that completed.
    pub n_ok: usize,
    /// Seeds that failed even after one retry.
    pub n_failed: usize,
    /// `(seed, error)` for every failed seed.
    pub failures: Vec<(u64, String)>,
}

impl SeedSummary {
    /// `"84.1±0.2"`-style cell in percent, as in the paper's tables —
    /// `"n/a"` when every seed failed (never `NaN±NaN`).
    pub fn cell(&self) -> String {
        if self.accs.is_empty() {
            return "n/a".into();
        }
        format!("{:.1}±{:.1}", 100.0 * self.mean, 100.0 * self.std)
    }

    /// Mean accuracy in percent (NaN when every seed failed).
    pub fn mean_pct(&self) -> f64 {
        100.0 * self.mean
    }

    /// JSON form (for result files the bench binaries emit). Failed seeds
    /// surface as `n_failed`/`failures`, so a results file always records
    /// how much of the table is real.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("accs".into(), Json::Arr(self.accs.iter().map(|&a| Json::Num(a)).collect())),
            ("mean".into(), Json::Num(self.mean)),
            ("std".into(), Json::Num(self.std)),
            ("mean_epoch_seconds".into(), Json::Num(self.mean_epoch_seconds)),
            ("mean_epochs".into(), Json::Num(self.mean_epochs)),
            ("n_ok".into(), Json::Num(self.n_ok as f64)),
            ("n_failed".into(), Json::Num(self.n_failed as f64)),
            (
                "failures".into(),
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|(seed, err)| {
                            Json::Obj(vec![
                                ("seed".into(), Json::Num(*seed as f64)),
                                ("error".into(), Json::Str(err.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn aggregate(results: Vec<FitResult>, failures: Vec<(u64, String)>) -> SeedSummary {
        let accs: Vec<f64> = results.iter().map(|r| r.test_acc).collect();
        let n = accs.len();
        let mean = if n == 0 { f64::NAN } else { accs.iter().sum::<f64>() / n as f64 };
        let var = if n == 0 {
            f64::NAN
        } else {
            accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / n as f64
        };
        SeedSummary {
            mean,
            std: var.sqrt(),
            mean_epoch_seconds: results.iter().map(|r| r.mean_epoch_seconds).sum::<f64>()
                / n.max(1) as f64,
            mean_epochs: results.iter().map(|r| r.epochs as f64).sum::<f64>() / n.max(1) as f64,
            n_ok: n,
            n_failed: failures.len(),
            failures,
            accs,
        }
    }
}

/// Run `f(seed)` for `n_seeds` seeds starting at `base_seed` and aggregate.
/// Panics if any seed fails — use [`run_seeds_fallible`] for isolation.
pub fn run_seeds(n_seeds: usize, base_seed: u64, mut f: impl FnMut(u64) -> FitResult) -> SeedSummary {
    assert!(n_seeds >= 1, "run_seeds: need at least one seed");
    let results: Vec<FitResult> = (0..n_seeds).map(|i| f(base_seed + i as u64)).collect();
    SeedSummary::aggregate(results, Vec::new())
}

/// Like [`run_seeds`] but each seed's run may fail: a failed seed is retried
/// once (a fresh attempt of the identical run — catches transient I/O), and
/// a second failure records the seed in [`SeedSummary::failures`] while the
/// remaining seeds still aggregate.
pub fn run_seeds_fallible(
    n_seeds: usize,
    base_seed: u64,
    mut f: impl FnMut(u64) -> TrainResult<FitResult>,
) -> TrainResult<SeedSummary> {
    if n_seeds < 1 {
        return Err(TrainError::InvalidConfig("run_seeds: need at least one seed".into()));
    }
    let mut results = Vec::with_capacity(n_seeds);
    let mut failures = Vec::new();
    for i in 0..n_seeds {
        let seed = base_seed + i as u64;
        match f(seed).or_else(|_| f(seed)) {
            Ok(r) => results.push(r),
            Err(e) => failures.push((seed, e.to_string())),
        }
    }
    Ok(SeedSummary::aggregate(results, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(acc: f64, secs: f64) -> FitResult {
        FitResult {
            best_val_acc: acc,
            test_acc: acc,
            epochs: 10,
            mean_epoch_seconds: secs,
            recoveries: 0,
            history: Vec::new(),
        }
    }

    #[test]
    fn aggregates_mean_and_std() {
        let accs = [0.8, 0.9, 1.0];
        let mut it = accs.iter();
        let s = run_seeds(3, 0, |_| fake(*it.next().unwrap(), 0.01));
        assert!((s.mean - 0.9).abs() < 1e-12);
        let expected_std = (0.02f64 / 3.0).sqrt();
        assert!((s.std - expected_std).abs() < 1e-12);
        assert_eq!(s.accs.len(), 3);
        assert_eq!((s.n_ok, s.n_failed), (3, 0));
    }

    #[test]
    fn seeds_are_passed_through() {
        let mut seen = Vec::new();
        let _ = run_seeds(3, 100, |s| {
            seen.push(s);
            fake(0.5, 0.0)
        });
        assert_eq!(seen, vec![100, 101, 102]);
    }

    #[test]
    fn cell_formats_like_the_paper() {
        let s = run_seeds(2, 0, |i| fake(if i == 0 { 0.84 } else { 0.842 }, 0.0));
        assert_eq!(s.cell(), "84.1±0.1");
    }

    #[test]
    fn failed_seed_is_retried_once_then_skipped() {
        // Seed 1 fails both its attempts; seeds 0 and 2 succeed. Seed 2's
        // first attempt fails but the retry lands.
        let mut calls: Vec<u64> = Vec::new();
        let mut seed2_failures = 0;
        let s = run_seeds_fallible(3, 0, |seed| {
            calls.push(seed);
            match seed {
                1 => Err(TrainError::Diverged {
                    epoch: 7,
                    recoveries: 2,
                    reason: "loss = NaN".into(),
                }),
                2 if seed2_failures == 0 => {
                    seed2_failures += 1;
                    Err(TrainError::Io("transient".into()))
                }
                _ => Ok(fake(0.8, 0.01)),
            }
        })
        .unwrap();
        assert_eq!(calls, vec![0, 1, 1, 2, 2], "one retry for each failed attempt");
        assert_eq!((s.n_ok, s.n_failed), (2, 1));
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].0, 1);
        assert!(s.failures[0].1.contains("diverged"), "{}", s.failures[0].1);
        assert_eq!(s.accs, vec![0.8, 0.8]);
        assert!((s.mean - 0.8).abs() < 1e-12, "mean over successful seeds only");
    }

    #[test]
    fn all_seeds_failed_renders_na_not_nan() {
        let s = run_seeds_fallible(2, 5, |_| {
            Err(TrainError::Diverged { epoch: 0, recoveries: 0, reason: "loss = inf".into() })
        })
        .unwrap();
        assert_eq!(s.cell(), "n/a");
        assert_eq!((s.n_ok, s.n_failed), (0, 2));
        assert!(s.mean.is_nan());
        // The JSON dump must stay parseable: NaN means serialize as null.
        let json = s.to_json().to_string();
        assert!(json.contains("\"mean\":null"));
        assert!(json.contains("\"n_failed\":2"));
    }

    #[test]
    fn zero_seeds_is_a_typed_error() {
        let err = run_seeds_fallible(0, 0, |_| Ok(fake(0.5, 0.0))).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)));
    }
}
