//! Multi-seed experiment runner: the paper runs "each method 10 times and
//! reports the mean accuracy and the standard deviation".

use lasagne_testkit::Json;

use crate::trainer::FitResult;

/// Aggregate of repeated seeded runs.
#[derive(Clone, Debug)]
pub struct SeedSummary {
    /// Test accuracies (fraction in `[0,1]`), one per seed.
    pub accs: Vec<f64>,
    /// Mean test accuracy.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Mean per-epoch optimization seconds across runs.
    pub mean_epoch_seconds: f64,
    /// Mean epochs until early stop.
    pub mean_epochs: f64,
}

impl SeedSummary {
    /// `"84.1±0.2"`-style cell in percent, as in the paper's tables.
    pub fn cell(&self) -> String {
        format!("{:.1}±{:.1}", 100.0 * self.mean, 100.0 * self.std)
    }

    /// Mean accuracy in percent.
    pub fn mean_pct(&self) -> f64 {
        100.0 * self.mean
    }

    /// JSON form (for result files the bench binaries emit).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("accs".into(), Json::Arr(self.accs.iter().map(|&a| Json::Num(a)).collect())),
            ("mean".into(), Json::Num(self.mean)),
            ("std".into(), Json::Num(self.std)),
            ("mean_epoch_seconds".into(), Json::Num(self.mean_epoch_seconds)),
            ("mean_epochs".into(), Json::Num(self.mean_epochs)),
        ])
    }
}

/// Run `f(seed)` for `n_seeds` seeds starting at `base_seed` and aggregate.
pub fn run_seeds(n_seeds: usize, base_seed: u64, mut f: impl FnMut(u64) -> FitResult) -> SeedSummary {
    assert!(n_seeds >= 1, "run_seeds: need at least one seed");
    let results: Vec<FitResult> = (0..n_seeds)
        .map(|i| f(base_seed + i as u64))
        .collect();
    let accs: Vec<f64> = results.iter().map(|r| r.test_acc).collect();
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / accs.len() as f64;
    SeedSummary {
        mean,
        std: var.sqrt(),
        mean_epoch_seconds: results.iter().map(|r| r.mean_epoch_seconds).sum::<f64>()
            / results.len() as f64,
        mean_epochs: results.iter().map(|r| r.epochs as f64).sum::<f64>() / results.len() as f64,
        accs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(acc: f64, secs: f64) -> FitResult {
        FitResult {
            best_val_acc: acc,
            test_acc: acc,
            epochs: 10,
            mean_epoch_seconds: secs,
            history: Vec::new(),
        }
    }

    #[test]
    fn aggregates_mean_and_std() {
        let accs = [0.8, 0.9, 1.0];
        let mut it = accs.iter();
        let s = run_seeds(3, 0, |_| fake(*it.next().unwrap(), 0.01));
        assert!((s.mean - 0.9).abs() < 1e-12);
        let expected_std = (0.02f64 / 3.0).sqrt();
        assert!((s.std - expected_std).abs() < 1e-12);
        assert_eq!(s.accs.len(), 3);
    }

    #[test]
    fn seeds_are_passed_through() {
        let mut seen = Vec::new();
        let _ = run_seeds(3, 100, |s| {
            seen.push(s);
            fake(0.5, 0.0)
        });
        assert_eq!(seen, vec![100, 101, 102]);
    }

    #[test]
    fn cell_formats_like_the_paper() {
        let s = run_seeds(2, 0, |i| fake(if i == 0 { 0.84 } else { 0.842 }, 0.0));
        assert_eq!(s.cell(), "84.1±0.1");
    }
}
