//! The training loop: Adam + early stopping on validation accuracy, with
//! best-checkpoint restoration and per-epoch wall-clock timing (Fig 7) —
//! wrapped in a fault-tolerance layer (DESIGN.md §7):
//!
//! * **Divergence guardrails** — every optimization step checks the loss,
//!   the gradients (after an optional global-norm clip) and the updated
//!   parameters for NaN/±Inf. On a hit, the step is rolled back to the
//!   top-of-epoch snapshot (weights, Adam moments *and* PRNG state), the
//!   learning rate is halved, and the epoch is retried — up to
//!   [`TrainConfig::max_recoveries`] times before a structured
//!   [`TrainError::Diverged`] is returned. No run ever silently produces
//!   NaN weights.
//! * **Crash-safe resume** — with a [`CheckpointPolicy`], the full train
//!   state (weights, best snapshot, Adam moments, counters, PRNG state,
//!   history) is persisted every `every` epochs; `resume: true` picks it
//!   back up and replays the remaining epochs **bit-identically** to the
//!   uninterrupted run.
//! * **Fault injection** — an optional [`FaultPlan`] from the testkit
//!   poisons a chosen gradient step or simulates a crash at a chosen
//!   epoch, so the recovery paths above are tested deterministically.

use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use lasagne_autograd::{clip_grad_norm, Adam, Optimizer, ParamId, ParamStore, Tape};
use lasagne_datasets::Split;
use lasagne_gnn::sampling::BatchStrategy;
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::{FaultPlan, Json};

use crate::checkpoint::{load_train_state_with_fallback, save_train_state, TrainState};
use crate::error::{TrainError, TrainResult};
use crate::metrics::accuracy;

/// Training-loop configuration (§5.1.3 defaults via
/// [`TrainConfig::from_hyper`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Hard cap on epochs (paper: 400; scaled default 200, see
    /// EXPERIMENTS.md).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs (paper: 20).
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 factor folded into the gradient.
    pub weight_decay: f32,
    /// Evaluate validation accuracy every `eval_every` epochs (1 = always).
    pub eval_every: usize,
    /// Clip the global gradient norm to this bound before each update
    /// (`None` = no clipping, the paper's setting).
    pub clip_norm: Option<f32>,
    /// How many divergence recoveries (rollback + LR halving) to attempt
    /// before reporting [`TrainError::Diverged`]. 0 = fail fast.
    pub max_recoveries: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 200,
            patience: 20,
            lr: 0.01,
            weight_decay: 5e-4,
            eval_every: 1,
            clip_norm: None,
            max_recoveries: 2,
        }
    }
}

impl TrainConfig {
    /// Lift lr/weight-decay from the shared hyper-parameter block.
    pub fn from_hyper(hyper: &Hyper) -> TrainConfig {
        TrainConfig {
            lr: hyper.lr,
            weight_decay: hyper.weight_decay,
            ..TrainConfig::default()
        }
    }

    fn validate(&self) -> TrainResult<()> {
        if self.max_epochs < 1 {
            return Err(TrainError::InvalidConfig("fit: max_epochs must be ≥ 1".into()));
        }
        if self.eval_every < 1 {
            return Err(TrainError::InvalidConfig("fit: eval_every must be ≥ 1".into()));
        }
        if let Some(c) = self.clip_norm {
            if !(c > 0.0) {
                return Err(TrainError::InvalidConfig(format!(
                    "fit: clip_norm {c} must be positive"
                )));
            }
        }
        Ok(())
    }
}

/// One epoch of the training history.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training NLL on the epoch's batch.
    pub loss: f32,
    /// Validation accuracy (on the eval context), if evaluated this epoch.
    pub val_acc: Option<f64>,
    /// Wall-clock seconds of the optimization step (forward+backward+step,
    /// excluding evaluation — this is the "per epoch time" of Fig 7).
    pub train_seconds: f64,
}

impl EpochStats {
    /// JSON form (for result files the bench binaries emit).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("loss".into(), Json::Num(self.loss as f64)),
            (
                "val_acc".into(),
                self.val_acc.map_or(Json::Null, Json::Num),
            ),
            ("train_seconds".into(), Json::Num(self.train_seconds)),
        ])
    }

    /// Inverse of [`EpochStats::to_json`] (train-state checkpoints carry
    /// the history so a resumed run's `FitResult` is complete).
    pub fn from_json(j: &Json) -> TrainResult<EpochStats> {
        let num = |k: &str| {
            j.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| TrainError::Parse(format!("epoch stats: '{k}' missing/invalid")))
        };
        Ok(EpochStats {
            epoch: j
                .get("epoch")
                .and_then(Json::as_usize)
                .ok_or_else(|| TrainError::Parse("epoch stats: 'epoch' missing/invalid".into()))?,
            loss: num("loss")? as f32,
            val_acc: match j.get("val_acc") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| {
                    TrainError::Parse("epoch stats: 'val_acc' not a number".into())
                })?),
            },
            train_seconds: num("train_seconds")?,
        })
    }
}

/// Outcome of one training run.
#[derive(Clone, Debug)]
pub struct FitResult {
    /// Best validation accuracy seen.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Epochs actually run (≤ max_epochs).
    pub epochs: usize,
    /// Mean per-epoch optimization time in seconds.
    pub mean_epoch_seconds: f64,
    /// Divergence recoveries (rollback + LR halving) consumed.
    pub recoveries: usize,
    /// Full history.
    pub history: Vec<EpochStats>,
}

impl FitResult {
    /// JSON form (for result files the bench binaries emit).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("best_val_acc".into(), Json::Num(self.best_val_acc)),
            ("test_acc".into(), Json::Num(self.test_acc)),
            ("epochs".into(), Json::Num(self.epochs as f64)),
            ("mean_epoch_seconds".into(), Json::Num(self.mean_epoch_seconds)),
            ("recoveries".into(), Json::Num(self.recoveries as f64)),
            (
                "history".into(),
                Json::Arr(self.history.iter().map(EpochStats::to_json).collect()),
            ),
        ])
    }
}

/// Deterministic evaluation forward: logits on `ctx`.
pub fn evaluate(model: &dyn NodeClassifier, ctx: &GraphContext, rng: &mut TensorRng) -> Tensor {
    lasagne_obs::span!("eval");
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, rng);
    tape.value(out.logits).clone()
}

/// A hook invoked after every epoch's evaluation with
/// `(epoch, model, eval_ctx)` — used to trace MI during training (Fig 6).
pub type EpochCallback<'a> = &'a mut dyn FnMut(usize, &dyn NodeClassifier, &GraphContext);

/// Where and how often to persist the resumable train state.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint file; its `.prev` sibling holds the previous generation.
    pub path: PathBuf,
    /// Save every `every` epochs (must be ≥ 1).
    pub every: usize,
}

impl CheckpointPolicy {
    /// Save to `path` at the end of every epoch.
    pub fn every_epoch(path: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy { path: path.into(), every: 1 }
    }
}

/// Optional behaviors of [`fit_with_options`]; `FitOptions::default()`
/// reproduces plain [`fit`].
#[derive(Default)]
pub struct FitOptions<'a> {
    /// Per-epoch hook (see [`EpochCallback`]).
    pub callback: Option<EpochCallback<'a>>,
    /// Deterministic fault injection (robustness tests only).
    pub fault: Option<&'a FaultPlan>,
    /// Persist resumable train state on this schedule.
    pub checkpoint: Option<CheckpointPolicy>,
    /// If the checkpoint file exists, load it and continue from there
    /// instead of starting fresh. Requires `checkpoint`.
    pub resume: bool,
}

/// Train `model` with `strategy` supplying per-step (sub)graphs, early
/// stopping on `eval_ctx`/`split.val`, reporting test accuracy at the best
/// checkpoint. Panics if training diverges beyond recovery — use
/// [`try_fit`] to handle that as a value. See [`fit_with_options`] for
/// checkpointing/resume and [`fit_with_callback`] for a per-epoch hook.
pub fn fit(
    model: &mut dyn NodeClassifier,
    strategy: &mut dyn BatchStrategy,
    eval_ctx: &GraphContext,
    split: &Split,
    cfg: &TrainConfig,
    rng: &mut TensorRng,
) -> FitResult {
    try_fit(model, strategy, eval_ctx, split, cfg, rng).unwrap_or_else(|e| panic!("fit: {e}"))
}

/// [`fit`], but divergence and I/O failures come back as a
/// [`TrainError`] instead of a panic (the multi-seed runner uses this to
/// degrade gracefully when one seed blows up).
pub fn try_fit(
    model: &mut dyn NodeClassifier,
    strategy: &mut dyn BatchStrategy,
    eval_ctx: &GraphContext,
    split: &Split,
    cfg: &TrainConfig,
    rng: &mut TensorRng,
) -> TrainResult<FitResult> {
    fit_with_options(model, strategy, eval_ctx, split, cfg, rng, FitOptions::default())
}

/// [`fit`] with an optional per-epoch callback.
pub fn fit_with_callback(
    model: &mut dyn NodeClassifier,
    strategy: &mut dyn BatchStrategy,
    eval_ctx: &GraphContext,
    split: &Split,
    cfg: &TrainConfig,
    rng: &mut TensorRng,
    callback: Option<EpochCallback<'_>>,
) -> FitResult {
    fit_with_options(
        model,
        strategy,
        eval_ctx,
        split,
        cfg,
        rng,
        FitOptions { callback, ..FitOptions::default() },
    )
    .unwrap_or_else(|e| panic!("fit: {e}"))
}

/// Named copy of the store's current values (for train-state checkpoints).
fn named_snapshot(store: &ParamStore) -> Vec<(String, Tensor)> {
    (0..store.len())
        .map(|i| {
            let id = ParamId::from_index(i);
            (store.name(id).to_string(), store.value(id).clone())
        })
        .collect()
}

/// Check that a checkpointed snapshot matches the live store's shapes.
fn check_snapshot_shapes(store: &ParamStore, snapshot: &[Tensor], what: &str) -> TrainResult<()> {
    if snapshot.len() != store.len() {
        return Err(TrainError::Mismatch(format!(
            "{what}: checkpoint has {} tensors, model has {}",
            snapshot.len(),
            store.len()
        )));
    }
    for (i, t) in snapshot.iter().enumerate() {
        let have = store.value(ParamId::from_index(i)).shape();
        if t.shape() != have {
            return Err(TrainError::Mismatch(format!(
                "{what}: tensor {i} is {:?} in the checkpoint but {have:?} in the model",
                t.shape()
            )));
        }
    }
    Ok(())
}

/// The full fault-tolerant training engine. `FitOptions::default()` makes
/// this behave exactly like [`fit`] (bit-identical trajectories).
pub fn fit_with_options(
    model: &mut dyn NodeClassifier,
    strategy: &mut dyn BatchStrategy,
    eval_ctx: &GraphContext,
    split: &Split,
    cfg: &TrainConfig,
    rng: &mut TensorRng,
    mut opts: FitOptions<'_>,
) -> TrainResult<FitResult> {
    cfg.validate()?;
    if let Some(pol) = &opts.checkpoint {
        if pol.every < 1 {
            return Err(TrainError::InvalidConfig("fit: checkpoint.every must be ≥ 1".into()));
        }
    }
    if opts.resume && opts.checkpoint.is_none() {
        return Err(TrainError::InvalidConfig("fit: resume requires a checkpoint policy".into()));
    }

    let mut opt = Adam::new(model.store(), cfg.lr, cfg.weight_decay);
    let eval_labels = Rc::new((*eval_ctx.labels).clone());

    let mut best_val = f64::NEG_INFINITY;
    let mut best_snapshot = model.store().snapshot();
    let mut since_best = 0usize;
    let mut history: Vec<EpochStats> = Vec::with_capacity(cfg.max_epochs);
    let mut train_time_total = 0.0f64;
    let mut start_epoch = 0usize;
    let mut step = 0usize;
    let mut recoveries = 0usize;

    // Resume: restore the complete state the interrupted run persisted.
    if opts.resume {
        let path = &opts.checkpoint.as_ref().expect("checked above").path;
        if path.exists() {
            let (state, _from_fallback) = load_train_state_with_fallback(path)?;
            state.apply_params(model.store_mut())?;
            check_snapshot_shapes(model.store(), &state.best_params, "best_params")?;
            if state.adam.m.len() != model.store().len() {
                return Err(TrainError::Mismatch(format!(
                    "adam state: checkpoint has {} moments, model has {} params",
                    state.adam.m.len(),
                    model.store().len()
                )));
            }
            opt.restore_state(&state.adam);
            opt.set_learning_rate(state.lr);
            *rng = TensorRng::from_state(state.rng);
            best_val = state.best_val;
            best_snapshot = state.best_params;
            since_best = state.since_best;
            history = state.history;
            train_time_total = state.train_time_total;
            start_epoch = state.next_epoch;
            step = state.step;
            recoveries = state.recoveries;
        }
    }

    let mut epoch = start_epoch;
    while epoch < cfg.max_epochs {
        if let Some(plan) = opts.fault {
            if plan.crash_at(epoch) {
                return Err(TrainError::Crashed { epoch });
            }
        }

        lasagne_obs::span!("epoch");

        // Top-of-epoch snapshot: the rollback target if this epoch's update
        // turns out non-finite. Captured outside the timed window so Fig 7
        // timings stay comparable.
        let pre_params = model.store().snapshot();
        let pre_adam = opt.state();
        let pre_rng = rng.state();

        let start = Instant::now();
        let batch = strategy.batch(epoch, rng);
        let labels = if std::ptr::eq(batch.ctx.labels.as_ref(), eval_labels.as_ref()) {
            eval_labels.clone()
        } else {
            Rc::new((*batch.ctx.labels).clone())
        };
        let idx = Rc::new(batch.train_idx.clone());

        let mut tape = Tape::new();
        let loss = {
            lasagne_obs::span!("forward");
            let out = model.forward(&mut tape, &batch.ctx, Mode::Train, rng);
            let lp = tape.log_softmax(out.logits);
            let mut loss = tape.nll_masked(lp, labels, idx);
            if let Some(reg) = out.regularizer {
                loss = tape.add(loss, reg);
            }
            loss
        };
        let loss_value = tape.value(loss).get(0, 0);
        model.store_mut().zero_grads();
        {
            lasagne_obs::span!("backward");
            tape.backward(loss, model.store_mut());
        }

        let this_step = step;
        step += 1;
        if let Some(plan) = opts.fault {
            if plan.grad_nan_at(this_step) {
                let store = model.store_mut();
                if store.len() > 0 && store.grad(ParamId::from_index(0)).len() > 0 {
                    store.grad_mut(ParamId::from_index(0)).as_mut_slice()[0] = f32::NAN;
                }
            }
        }

        // Divergence guardrails: loss → gradients → (clip, update) → params.
        let mut failure: Option<String> = None;
        if !loss_value.is_finite() {
            failure = Some(format!("loss = {loss_value}"));
        } else if model.store().grads_non_finite() {
            failure = Some("non-finite gradient".into());
        } else {
            lasagne_obs::span!("step");
            if let Some(max_norm) = cfg.clip_norm {
                clip_grad_norm(model.store_mut(), max_norm);
            }
            opt.step(model.store_mut());
            if model.store().values_non_finite() {
                failure = Some("non-finite parameters after update".into());
            }
        }
        if let Some(reason) = failure {
            if recoveries >= cfg.max_recoveries {
                return Err(TrainError::Diverged { epoch, recoveries, reason });
            }
            // Recovery: roll back weights, Adam moments and the PRNG to the
            // top of this epoch, halve the LR, and retry the epoch.
            lasagne_obs::counter_add("train.recoveries", 1);
            recoveries += 1;
            model.store_mut().restore(&pre_params);
            opt.restore_state(&pre_adam);
            *rng = TensorRng::from_state(pre_rng);
            let halved = 0.5 * opt.learning_rate();
            opt.set_learning_rate(halved);
            continue;
        }
        let train_seconds = start.elapsed().as_secs_f64();
        train_time_total += train_seconds;

        let mut val_acc = None;
        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.max_epochs {
            let logits = evaluate(model, eval_ctx, rng);
            let acc = accuracy(&logits, &eval_ctx.labels, &split.val);
            val_acc = Some(acc);
            if acc > best_val {
                best_val = acc;
                best_snapshot = model.store().snapshot();
                since_best = 0;
            } else {
                since_best += cfg.eval_every;
            }
            if let Some(cb) = opts.callback.as_mut() {
                cb(epoch, model, eval_ctx);
            }
        }

        history.push(EpochStats { epoch, loss: loss_value, val_acc, train_seconds });

        if let Some(pol) = &opts.checkpoint {
            if (epoch + 1) % pol.every == 0 {
                let state = TrainState {
                    next_epoch: epoch + 1,
                    step,
                    lr: opt.learning_rate(),
                    recoveries,
                    best_val,
                    since_best,
                    train_time_total,
                    rng: rng.state(),
                    params: named_snapshot(model.store()),
                    best_params: best_snapshot.clone(),
                    adam: opt.state(),
                    history: history.clone(),
                };
                save_train_state(&state, &pol.path)?;
            }
        }

        if since_best >= cfg.patience {
            break;
        }
        epoch += 1;
    }

    // Test at the best-validation checkpoint (§5.1.3 protocol).
    model.store_mut().restore(&best_snapshot);
    let logits = evaluate(model, eval_ctx, rng);
    let test_acc = accuracy(&logits, &eval_ctx.labels, &split.test);
    let epochs = history.len();
    Ok(FitResult {
        best_val_acc: best_val.max(0.0),
        test_acc,
        epochs,
        mean_epoch_seconds: train_time_total / epochs.max(1) as f64,
        recoveries,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_datasets::{Dataset, DatasetId};
    use lasagne_gnn::models::Gcn;
    use lasagne_gnn::sampling::FullBatch;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            max_epochs: 60,
            patience: 15,
            lr: 0.02,
            weight_decay: 5e-4,
            eval_every: 1,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn gcn_beats_majority_on_cora_sim() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(0);
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &quick_cfg(), &mut rng);
        let majority = ds.majority_baseline();
        assert!(
            result.test_acc > majority + 0.2,
            "GCN test acc {:.3} vs majority {:.3}",
            result.test_acc,
            majority
        );
        assert!(result.best_val_acc > 0.0);
        assert!(result.mean_epoch_seconds > 0.0);
        assert_eq!(result.recoveries, 0, "healthy run must not trigger recovery");
    }

    #[test]
    fn early_stopping_caps_epochs() {
        let ds = Dataset::generate(DatasetId::Cora, 1);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 1);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(1);
        let cfg = TrainConfig { max_epochs: 500, patience: 5, ..quick_cfg() };
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
        assert!(
            result.epochs < 500,
            "patience 5 should stop well before 500 epochs (ran {})",
            result.epochs
        );
    }

    #[test]
    fn callback_fires_every_eval() {
        let ds = Dataset::generate(DatasetId::Cora, 2);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 2);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(2);
        let cfg = TrainConfig { max_epochs: 10, patience: 50, ..quick_cfg() };
        let mut calls = 0usize;
        let mut cb = |_e: usize, _m: &dyn NodeClassifier, _c: &GraphContext| calls += 1;
        let _ = fit_with_callback(
            &mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng, Some(&mut cb),
        );
        assert_eq!(calls, 10);
    }

    #[test]
    fn history_records_losses_and_times() {
        let ds = Dataset::generate(DatasetId::Cora, 3);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 3);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(3);
        let cfg = TrainConfig { max_epochs: 5, ..quick_cfg() };
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
        assert_eq!(result.history.len(), 5);
        assert!(result.history.iter().all(|e| e.loss.is_finite()));
        // Loss should drop over the first few epochs.
        assert!(result.history[4].loss < result.history[0].loss);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let ds = Dataset::generate(DatasetId::Cora, 4);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 4);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(4);
        for bad in [
            TrainConfig { max_epochs: 0, ..quick_cfg() },
            TrainConfig { eval_every: 0, ..quick_cfg() },
            TrainConfig { clip_norm: Some(0.0), ..quick_cfg() },
        ] {
            let err = try_fit(&mut model, &mut strat, &ctx, &ds.split, &bad, &mut rng).unwrap_err();
            assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
        }
    }

    #[test]
    fn epoch_stats_json_round_trips() -> TrainResult<()> {
        for stats in [
            EpochStats { epoch: 3, loss: 0.123, val_acc: Some(0.75), train_seconds: 0.01 },
            EpochStats { epoch: 0, loss: 1.5, val_acc: None, train_seconds: 0.0 },
        ] {
            let back = EpochStats::from_json(&stats.to_json())?;
            assert_eq!(back.epoch, stats.epoch);
            assert_eq!(back.loss.to_bits(), stats.loss.to_bits());
            assert_eq!(back.val_acc.map(f64::to_bits), stats.val_acc.map(f64::to_bits));
            assert_eq!(back.train_seconds.to_bits(), stats.train_seconds.to_bits());
        }
        Ok(())
    }

    #[test]
    fn clip_norm_bounds_the_update_but_still_learns() {
        let ds = Dataset::generate(DatasetId::Cora, 5);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 5);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(5);
        let cfg = TrainConfig { max_epochs: 30, clip_norm: Some(1.0), ..quick_cfg() };
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
        assert!(result.test_acc > ds.majority_baseline());
        assert!(result.history.iter().all(|e| e.loss.is_finite()));
    }
}
