//! The training loop: Adam + early stopping on validation accuracy, with
//! best-checkpoint restoration and per-epoch wall-clock timing (Fig 7).

use std::rc::Rc;
use std::time::Instant;

use lasagne_autograd::{Adam, Optimizer, Tape};
use lasagne_datasets::Split;
use lasagne_gnn::sampling::BatchStrategy;
use lasagne_gnn::{GraphContext, Hyper, Mode, NodeClassifier};
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::Json;

use crate::metrics::accuracy;

/// Training-loop configuration (§5.1.3 defaults via
/// [`TrainConfig::from_hyper`]).
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Hard cap on epochs (paper: 400; scaled default 200, see
    /// EXPERIMENTS.md).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs (paper: 20).
    pub patience: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// L2 factor folded into the gradient.
    pub weight_decay: f32,
    /// Evaluate validation accuracy every `eval_every` epochs (1 = always).
    pub eval_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 200,
            patience: 20,
            lr: 0.01,
            weight_decay: 5e-4,
            eval_every: 1,
        }
    }
}

impl TrainConfig {
    /// Lift lr/weight-decay from the shared hyper-parameter block.
    pub fn from_hyper(hyper: &Hyper) -> TrainConfig {
        TrainConfig {
            lr: hyper.lr,
            weight_decay: hyper.weight_decay,
            ..TrainConfig::default()
        }
    }
}

/// One epoch of the training history.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training NLL on the epoch's batch.
    pub loss: f32,
    /// Validation accuracy (on the eval context), if evaluated this epoch.
    pub val_acc: Option<f64>,
    /// Wall-clock seconds of the optimization step (forward+backward+step,
    /// excluding evaluation — this is the "per epoch time" of Fig 7).
    pub train_seconds: f64,
}

impl EpochStats {
    /// JSON form (for result files the bench binaries emit).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("epoch".into(), Json::Num(self.epoch as f64)),
            ("loss".into(), Json::Num(self.loss as f64)),
            (
                "val_acc".into(),
                self.val_acc.map_or(Json::Null, Json::Num),
            ),
            ("train_seconds".into(), Json::Num(self.train_seconds)),
        ])
    }
}

/// Outcome of one training run.
#[derive(Clone, Debug)]
pub struct FitResult {
    /// Best validation accuracy seen.
    pub best_val_acc: f64,
    /// Test accuracy at the best-validation checkpoint.
    pub test_acc: f64,
    /// Epochs actually run (≤ max_epochs).
    pub epochs: usize,
    /// Mean per-epoch optimization time in seconds.
    pub mean_epoch_seconds: f64,
    /// Full history.
    pub history: Vec<EpochStats>,
}

impl FitResult {
    /// JSON form (for result files the bench binaries emit).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("best_val_acc".into(), Json::Num(self.best_val_acc)),
            ("test_acc".into(), Json::Num(self.test_acc)),
            ("epochs".into(), Json::Num(self.epochs as f64)),
            ("mean_epoch_seconds".into(), Json::Num(self.mean_epoch_seconds)),
            (
                "history".into(),
                Json::Arr(self.history.iter().map(EpochStats::to_json).collect()),
            ),
        ])
    }
}

/// Deterministic evaluation forward: logits on `ctx`.
pub fn evaluate(model: &dyn NodeClassifier, ctx: &GraphContext, rng: &mut TensorRng) -> Tensor {
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, rng);
    tape.value(out.logits).clone()
}

/// Train `model` with `strategy` supplying per-step (sub)graphs, early
/// stopping on `eval_ctx`/`split.val`, reporting test accuracy at the best
/// checkpoint. See [`fit_with_callback`] for a per-epoch hook.
pub fn fit(
    model: &mut dyn NodeClassifier,
    strategy: &mut dyn BatchStrategy,
    eval_ctx: &GraphContext,
    split: &Split,
    cfg: &TrainConfig,
    rng: &mut TensorRng,
) -> FitResult {
    fit_with_callback(model, strategy, eval_ctx, split, cfg, rng, None)
}

/// A hook invoked after every epoch's evaluation with
/// `(epoch, model, eval_ctx)` — used to trace MI during training (Fig 6).
pub type EpochCallback<'a> = &'a mut dyn FnMut(usize, &dyn NodeClassifier, &GraphContext);

/// [`fit`] with an optional per-epoch callback.
pub fn fit_with_callback(
    model: &mut dyn NodeClassifier,
    strategy: &mut dyn BatchStrategy,
    eval_ctx: &GraphContext,
    split: &Split,
    cfg: &TrainConfig,
    rng: &mut TensorRng,
    mut callback: Option<EpochCallback<'_>>,
) -> FitResult {
    assert!(cfg.max_epochs >= 1, "fit: max_epochs must be ≥ 1");
    assert!(cfg.eval_every >= 1, "fit: eval_every must be ≥ 1");
    let mut opt = Adam::new(model.store(), cfg.lr, cfg.weight_decay);
    let eval_labels = Rc::new((*eval_ctx.labels).clone());

    let mut best_val = f64::NEG_INFINITY;
    let mut best_snapshot = model.store().snapshot();
    let mut since_best = 0usize;
    let mut history = Vec::with_capacity(cfg.max_epochs);
    let mut train_time_total = 0.0f64;

    for epoch in 0..cfg.max_epochs {
        let start = Instant::now();
        let batch = strategy.batch(epoch, rng);
        let labels = if std::ptr::eq(batch.ctx.labels.as_ref(), eval_labels.as_ref()) {
            eval_labels.clone()
        } else {
            Rc::new((*batch.ctx.labels).clone())
        };
        let idx = Rc::new(batch.train_idx.clone());

        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &batch.ctx, Mode::Train, rng);
        let lp = tape.log_softmax(out.logits);
        let mut loss = tape.nll_masked(lp, labels, idx);
        if let Some(reg) = out.regularizer {
            loss = tape.add(loss, reg);
        }
        let loss_value = tape.value(loss).get(0, 0);
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
        let train_seconds = start.elapsed().as_secs_f64();
        train_time_total += train_seconds;

        let mut val_acc = None;
        if epoch % cfg.eval_every == 0 || epoch + 1 == cfg.max_epochs {
            let logits = evaluate(model, eval_ctx, rng);
            let acc = accuracy(&logits, &eval_ctx.labels, &split.val);
            val_acc = Some(acc);
            if acc > best_val {
                best_val = acc;
                best_snapshot = model.store().snapshot();
                since_best = 0;
            } else {
                since_best += cfg.eval_every;
            }
            if let Some(cb) = callback.as_mut() {
                cb(epoch, model, eval_ctx);
            }
        }

        history.push(EpochStats { epoch, loss: loss_value, val_acc, train_seconds });

        if since_best >= cfg.patience {
            break;
        }
    }

    // Test at the best-validation checkpoint (§5.1.3 protocol).
    model.store_mut().restore(&best_snapshot);
    let logits = evaluate(model, eval_ctx, rng);
    let test_acc = accuracy(&logits, &eval_ctx.labels, &split.test);
    let epochs = history.len();
    FitResult {
        best_val_acc: best_val.max(0.0),
        test_acc,
        epochs,
        mean_epoch_seconds: train_time_total / epochs.max(1) as f64,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_datasets::{Dataset, DatasetId};
    use lasagne_gnn::models::Gcn;
    use lasagne_gnn::sampling::FullBatch;

    fn quick_cfg() -> TrainConfig {
        TrainConfig {
            max_epochs: 60,
            patience: 15,
            lr: 0.02,
            weight_decay: 5e-4,
            eval_every: 1,
        }
    }

    #[test]
    fn gcn_beats_majority_on_cora_sim() {
        let ds = Dataset::generate(DatasetId::Cora, 0);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(0);
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &quick_cfg(), &mut rng);
        let majority = ds.majority_baseline();
        assert!(
            result.test_acc > majority + 0.2,
            "GCN test acc {:.3} vs majority {:.3}",
            result.test_acc,
            majority
        );
        assert!(result.best_val_acc > 0.0);
        assert!(result.mean_epoch_seconds > 0.0);
    }

    #[test]
    fn early_stopping_caps_epochs() {
        let ds = Dataset::generate(DatasetId::Cora, 1);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 1);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(1);
        let cfg = TrainConfig { max_epochs: 500, patience: 5, ..quick_cfg() };
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
        assert!(
            result.epochs < 500,
            "patience 5 should stop well before 500 epochs (ran {})",
            result.epochs
        );
    }

    #[test]
    fn callback_fires_every_eval() {
        let ds = Dataset::generate(DatasetId::Cora, 2);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 2);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(2);
        let cfg = TrainConfig { max_epochs: 10, patience: 50, ..quick_cfg() };
        let mut calls = 0usize;
        let mut cb = |_e: usize, _m: &dyn NodeClassifier, _c: &GraphContext| calls += 1;
        let _ = fit_with_callback(
            &mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng, Some(&mut cb),
        );
        assert_eq!(calls, 10);
    }

    #[test]
    fn history_records_losses_and_times() {
        let ds = Dataset::generate(DatasetId::Cora, 3);
        let hyper = Hyper::for_dataset(DatasetId::Cora);
        let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 3);
        let ctx = GraphContext::from_dataset(&ds);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(3);
        let cfg = TrainConfig { max_epochs: 5, ..quick_cfg() };
        let result = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
        assert_eq!(result.history.len(), 5);
        assert!(result.history.iter().all(|e| e.loss.is_finite()));
        // Loss should drop over the first few epochs.
        assert!(result.history[4].loss < result.history[0].loss);
    }
}
