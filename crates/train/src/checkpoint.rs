//! Crash-safe model checkpointing.
//!
//! Format **v2** (see DESIGN.md §7): every checkpoint is a JSON document
//!
//! ```json
//! {"format_version":2,"checksum":"<fnv1a64 hex>","body":{...}}
//! ```
//!
//! where `checksum` is the FNV-1a 64-bit hash of the serialized `body`.
//! The workspace JSON codec is byte-deterministic and exactly round-trips
//! every `f64`, so the loader re-serializes the parsed body and compares
//! hashes: any torn write or bit flip is detected as [`TrainError::Corrupt`]
//! before a single weight is loaded. Writes go to a temp file first and are
//! published with an atomic `rename`, and train-state saves rotate the
//! previous file to a `.prev` generation so a corrupted latest checkpoint
//! still leaves a loadable one behind.
//!
//! Two kinds of body are written:
//!
//! * `"kind":"params"` — just the weights ([`save_params`]/[`load_params`]),
//!   for train-once/serve-later. Legacy v1 files (no checksum) still load.
//! * `"kind":"train_state"` — weights **plus** Adam moments, epoch/patience
//!   counters, the current (possibly recovery-halved) learning rate, the
//!   PRNG state and the epoch history ([`save_train_state`]/
//!   [`load_train_state`]), so `fit` can resume bit-identically after a
//!   kill ([`crate::fit_with_options`]).

use std::path::{Path, PathBuf};

use lasagne_autograd::{AdamState, ParamId, ParamStore};
use lasagne_tensor::Tensor;
use lasagne_testkit::Json;

use crate::error::{TrainError, TrainResult};
use crate::trainer::EpochStats;

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 2;

/// FNV-1a 64-bit hash — the checkpoint content checksum. Not cryptographic;
/// it detects the accidental corruption (torn writes, bit rot) that kills
/// multi-hour sweeps.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> TrainError {
    TrainError::Io(format!("{}: {e}", path.display()))
}

/// Serialize `body` under a checksum envelope and publish it atomically:
/// write to `<path>.tmp`, then `rename` over `path` (a crash mid-write
/// leaves the old file intact, never a half-written new one). Public so
/// other on-disk artifacts (frozen models in `lasagne-serve`) share the
/// exact same envelope and durability guarantees.
pub fn atomic_write_envelope(path: &Path, body: Json) -> TrainResult<()> {
    let body_text = body.to_string();
    let doc = Json::Obj(vec![
        ("format_version".into(), Json::Num(FORMAT_VERSION as f64)),
        ("checksum".into(), Json::Str(format!("{:016x}", fnv1a64(body_text.as_bytes())))),
        ("body".into(), body),
    ]);
    let tmp = sibling(path, "tmp");
    std::fs::write(&tmp, doc.to_string()).map_err(|e| io_err(&tmp, e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// `<path>.<suffix>` alongside the checkpoint (keeps the original extension,
/// so generations of `ckpt.json` are `ckpt.json.prev` / `ckpt.json.tmp`).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".");
    name.push(suffix);
    PathBuf::from(name)
}

/// The previous-generation path used by [`save_train_state`]'s rotation.
pub fn previous_generation(path: &Path) -> PathBuf {
    sibling(path, "prev")
}

/// Read `path`, verify the checksum envelope, and return the body. Accepts
/// legacy v1 documents (no checksum) for params-only checkpoints.
pub fn read_envelope(path: &Path) -> TrainResult<Json> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let doc = Json::parse(&text).map_err(|e| TrainError::Parse(format!("{}: {e}", path.display())))?;
    let version = doc
        .get("format_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| TrainError::Parse("missing format_version".into()))? as u32;
    match version {
        1 => Ok(doc), // v1: the document itself is the body, no checksum.
        2 => {
            let stored = doc
                .get("checksum")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| TrainError::Parse("missing or malformed checksum".into()))?;
            let body = doc
                .get("body")
                .ok_or_else(|| TrainError::Parse("missing body".into()))?;
            let actual = fnv1a64(body.to_string().as_bytes());
            if actual != stored {
                return Err(TrainError::Corrupt(format!(
                    "{}: checksum {actual:016x} != stored {stored:016x}",
                    path.display()
                )));
            }
            Ok(body.clone())
        }
        v => Err(TrainError::Mismatch(format!("unsupported format version {v}"))),
    }
}

// ---------------------------------------------------------------------------
// Tensor / param (de)serialization helpers
// ---------------------------------------------------------------------------

pub fn tensor_to_json(t: &Tensor) -> Json {
    Json::Obj(vec![
        ("rows".into(), Json::Num(t.rows() as f64)),
        ("cols".into(), Json::Num(t.cols() as f64)),
        ("data".into(), Json::from_f32s(t.as_slice().iter().copied())),
    ])
}

pub fn tensor_from_json(j: &Json) -> TrainResult<Tensor> {
    let field = |k: &str| {
        j.get(k).ok_or_else(|| TrainError::Parse(format!("tensor missing field '{k}'")))
    };
    let rows = field("rows")?.as_usize().ok_or_else(|| TrainError::Parse("'rows' not an integer".into()))?;
    let cols = field("cols")?.as_usize().ok_or_else(|| TrainError::Parse("'cols' not an integer".into()))?;
    let data = field("data")?.to_f32s().ok_or_else(|| TrainError::Parse("'data' not a number array".into()))?;
    Tensor::from_vec(rows, cols, data).map_err(|e| TrainError::Parse(e.to_string()))
}

pub fn named_param_to_json(name: &str, t: &Tensor) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.to_string())),
        ("rows".into(), Json::Num(t.rows() as f64)),
        ("cols".into(), Json::Num(t.cols() as f64)),
        ("data".into(), Json::from_f32s(t.as_slice().iter().copied())),
    ])
}

pub fn named_param_from_json(j: &Json) -> TrainResult<(String, Tensor)> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| TrainError::Parse("param missing 'name'".into()))?
        .to_string();
    Ok((name, tensor_from_json(j)?))
}

fn store_params_to_json(store: &ParamStore) -> Json {
    Json::Arr(
        (0..store.len())
            .map(|i| {
                let id = ParamId::from_index(i);
                named_param_to_json(store.name(id), store.value(id))
            })
            .collect(),
    )
}

/// Validate names/counts/shapes and copy `params` into `store`.
fn apply_params(store: &mut ParamStore, params: &[(String, Tensor)]) -> TrainResult<()> {
    if params.len() != store.len() {
        return Err(TrainError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            params.len(),
            store.len()
        )));
    }
    for (i, (name, tensor)) in params.iter().enumerate() {
        let id = ParamId::from_index(i);
        if store.name(id) != name {
            return Err(TrainError::Mismatch(format!(
                "param {i} is '{name}' in the checkpoint but '{}' in the model",
                store.name(id)
            )));
        }
        if store.value(id).shape() != tensor.shape() {
            return Err(TrainError::Mismatch(format!(
                "param '{name}' is {:?} in the checkpoint but {:?} in the model",
                tensor.shape(),
                store.value(id).shape()
            )));
        }
    }
    for (i, (_, tensor)) in params.iter().enumerate() {
        *store.value_mut(ParamId::from_index(i)) = tensor.clone();
    }
    Ok(())
}

fn params_array_from_json(j: &Json) -> TrainResult<Vec<(String, Tensor)>> {
    j.as_arr()
        .ok_or_else(|| TrainError::Parse("'params' not an array".into()))?
        .iter()
        .map(named_param_from_json)
        .collect()
}

// ---------------------------------------------------------------------------
// Params-only checkpoints
// ---------------------------------------------------------------------------

/// Write every parameter of `store` to `path` (format v2: checksummed,
/// atomically published).
pub fn save_params(store: &ParamStore, path: &Path) -> TrainResult<()> {
    lasagne_obs::span!("checkpoint.save");
    let body = Json::Obj(vec![
        ("kind".into(), Json::Str("params".into())),
        ("params".into(), store_params_to_json(store)),
    ]);
    atomic_write_envelope(path, body)
}

/// Load a checkpoint written by [`save_params`] (or a legacy v1 file) into
/// `store`. The store must already contain parameters with identical names
/// and shapes (i.e. build the model with the same configuration first).
/// Also accepts a `train_state` checkpoint, loading just its weights.
pub fn load_params(store: &mut ParamStore, path: &Path) -> TrainResult<()> {
    lasagne_obs::span!("checkpoint.load");
    let body = read_envelope(path)?;
    let params = body
        .get("params")
        .ok_or_else(|| TrainError::Parse("missing params array".into()))?;
    apply_params(store, &params_array_from_json(params)?)
}

// ---------------------------------------------------------------------------
// Full train-state checkpoints (crash-safe resume)
// ---------------------------------------------------------------------------

/// Everything `fit` needs to continue bit-identically after a kill: weights,
/// the best-validation snapshot, Adam moments, progress counters, the
/// (possibly recovery-halved) learning rate, the PRNG state, and the epoch
/// history accumulated so far.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// First epoch the resumed run should execute.
    pub next_epoch: usize,
    /// Global optimization-step counter (counts every attempt, including
    /// recovery retries).
    pub step: usize,
    /// Learning rate in effect (halved by each divergence recovery).
    pub lr: f32,
    /// Divergence recoveries consumed so far.
    pub recoveries: usize,
    /// Best validation accuracy seen.
    pub best_val: f64,
    /// Epochs since the best validation accuracy improved.
    pub since_best: usize,
    /// Accumulated optimization wall-clock seconds.
    pub train_time_total: f64,
    /// PRNG state at the epoch boundary.
    pub rng: [u64; 4],
    /// Named current weights.
    pub params: Vec<(String, Tensor)>,
    /// Weights at the best-validation epoch (unnamed; same order as
    /// `params`).
    pub best_params: Vec<Tensor>,
    /// Adam step count and moments.
    pub adam: AdamState,
    /// Per-epoch history up to the checkpoint.
    pub history: Vec<EpochStats>,
}

impl TrainState {
    /// Validate and copy this state's current weights into `store`.
    pub fn apply_params(&self, store: &mut ParamStore) -> TrainResult<()> {
        apply_params(store, &self.params)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str("train_state".into())),
            (
                "progress".into(),
                Json::Obj(vec![
                    ("next_epoch".into(), Json::Num(self.next_epoch as f64)),
                    ("step".into(), Json::Num(self.step as f64)),
                    ("lr".into(), Json::Num(self.lr as f64)),
                    ("recoveries".into(), Json::Num(self.recoveries as f64)),
                    // f64 bits as hex: exact even for -inf (no eval yet).
                    ("best_val_bits".into(), Json::Str(format!("{:016x}", self.best_val.to_bits()))),
                    ("since_best".into(), Json::Num(self.since_best as f64)),
                    ("train_time_total".into(), Json::Num(self.train_time_total)),
                ]),
            ),
            (
                "rng".into(),
                Json::Arr(self.rng.iter().map(|w| Json::Str(format!("{w:016x}"))).collect()),
            ),
            (
                "params".into(),
                Json::Arr(
                    self.params
                        .iter()
                        .map(|(n, t)| named_param_to_json(n, t))
                        .collect(),
                ),
            ),
            (
                "best_params".into(),
                Json::Arr(self.best_params.iter().map(tensor_to_json).collect()),
            ),
            (
                "adam".into(),
                Json::Obj(vec![
                    ("t".into(), Json::Num(self.adam.t as f64)),
                    ("m".into(), Json::Arr(self.adam.m.iter().map(tensor_to_json).collect())),
                    ("v".into(), Json::Arr(self.adam.v.iter().map(tensor_to_json).collect())),
                ]),
            ),
            (
                "history".into(),
                Json::Arr(self.history.iter().map(EpochStats::to_json).collect()),
            ),
        ])
    }

    fn from_json(body: &Json) -> TrainResult<TrainState> {
        if body.get("kind").and_then(Json::as_str) != Some("train_state") {
            return Err(TrainError::Mismatch(
                "not a train_state checkpoint (kind field)".into(),
            ));
        }
        let progress = body
            .get("progress")
            .ok_or_else(|| TrainError::Parse("missing progress".into()))?;
        let p_usize = |k: &str| {
            progress
                .get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| TrainError::Parse(format!("progress.{k} missing/invalid")))
        };
        let p_f64 = |k: &str| {
            progress
                .get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| TrainError::Parse(format!("progress.{k} missing/invalid")))
        };
        let hex_u64 = |j: Option<&Json>, what: &str| -> TrainResult<u64> {
            j.and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| TrainError::Parse(format!("{what} missing/invalid")))
        };
        let rng_arr = body
            .get("rng")
            .and_then(Json::as_arr)
            .ok_or_else(|| TrainError::Parse("rng state missing".into()))?;
        if rng_arr.len() != 4 {
            return Err(TrainError::Parse("rng state must have 4 words".into()));
        }
        let mut rng = [0u64; 4];
        for (slot, word) in rng.iter_mut().zip(rng_arr) {
            *slot = hex_u64(Some(word), "rng word")?;
        }
        let tensors = |k: &str| -> TrainResult<Vec<Tensor>> {
            body.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| TrainError::Parse(format!("{k} missing")))?
                .iter()
                .map(tensor_from_json)
                .collect()
        };
        let adam = body.get("adam").ok_or_else(|| TrainError::Parse("adam state missing".into()))?;
        let adam_tensors = |k: &str| -> TrainResult<Vec<Tensor>> {
            adam.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| TrainError::Parse(format!("adam.{k} missing")))?
                .iter()
                .map(tensor_from_json)
                .collect()
        };
        Ok(TrainState {
            next_epoch: p_usize("next_epoch")?,
            step: p_usize("step")?,
            lr: p_f64("lr")? as f32,
            recoveries: p_usize("recoveries")?,
            best_val: f64::from_bits(hex_u64(progress.get("best_val_bits"), "best_val_bits")?),
            since_best: p_usize("since_best")?,
            train_time_total: p_f64("train_time_total")?,
            rng,
            params: params_array_from_json(
                body.get("params")
                    .ok_or_else(|| TrainError::Parse("params missing".into()))?,
            )?,
            best_params: tensors("best_params")?,
            adam: AdamState {
                t: adam
                    .get("t")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| TrainError::Parse("adam.t missing".into()))?,
                m: adam_tensors("m")?,
                v: adam_tensors("v")?,
            },
            history: body
                .get("history")
                .and_then(Json::as_arr)
                .ok_or_else(|| TrainError::Parse("history missing".into()))?
                .iter()
                .map(EpochStats::from_json)
                .collect::<TrainResult<Vec<_>>>()?,
        })
    }
}

/// Write a full train-state checkpoint, rotating any existing file at
/// `path` to the `.prev` generation first. Even if this write is later
/// found corrupt, [`load_train_state_with_fallback`] can still recover the
/// previous epoch's state.
pub fn save_train_state(state: &TrainState, path: &Path) -> TrainResult<()> {
    lasagne_obs::span!("checkpoint.save");
    if path.exists() {
        let prev = previous_generation(path);
        std::fs::rename(path, &prev).map_err(|e| io_err(&prev, e))?;
    }
    atomic_write_envelope(path, state.to_json())
}

/// Load a train-state checkpoint, verifying the checksum.
pub fn load_train_state(path: &Path) -> TrainResult<TrainState> {
    lasagne_obs::span!("checkpoint.load");
    TrainState::from_json(&read_envelope(path)?)
}

/// Load `path`, and if it is corrupt/truncated/unparseable, fall back to
/// the `.prev` generation. Returns the state and whether the fallback was
/// used. A missing primary file is an error (nothing to resume), as is a
/// corrupt primary with no healthy previous generation.
pub fn load_train_state_with_fallback(path: &Path) -> TrainResult<(TrainState, bool)> {
    match load_train_state(path) {
        Ok(state) => Ok((state, false)),
        Err(primary_err @ (TrainError::Corrupt(_) | TrainError::Parse(_))) => {
            match load_train_state(&previous_generation(path)) {
                Ok(state) => Ok((state, true)),
                Err(_) => Err(primary_err),
            }
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_tensor::TensorRng;
    use lasagne_testkit::rng::Rng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lasagne-ckpt-{name}-{}.json", std::process::id()))
    }

    fn sample_store(seed: u64) -> ParamStore {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut s = ParamStore::new();
        s.add("w1", rng.uniform_tensor(3, 4, -1.0, 1.0));
        s.add_with_decay("b1", rng.uniform_tensor(1, 4, -1.0, 1.0), false);
        s
    }

    fn sample_state(seed: u64) -> TrainState {
        let store = sample_store(seed);
        let adam = lasagne_autograd::Adam::new(&store, 0.01, 5e-4).state();
        TrainState {
            next_epoch: 7,
            step: 9,
            lr: 0.005,
            recoveries: 1,
            best_val: 0.8125,
            since_best: 2,
            train_time_total: 1.5,
            rng: TensorRng::seed_from_u64(seed).state(),
            params: (0..store.len())
                .map(|i| {
                    let id = ParamId::from_index(i);
                    (store.name(id).to_string(), store.value(id).clone())
                })
                .collect(),
            best_params: store.snapshot(),
            adam,
            history: vec![EpochStats { epoch: 0, loss: 1.25, val_acc: Some(0.5), train_seconds: 0.01 }],
        }
    }

    #[test]
    fn round_trip_preserves_values() -> TrainResult<()> {
        let path = temp_path("roundtrip");
        let src = sample_store(1);
        save_params(&src, &path)?;
        let mut dst = sample_store(2); // same shapes, different values
        assert_ne!(
            src.value(ParamId::from_index(0)),
            dst.value(ParamId::from_index(0))
        );
        load_params(&mut dst, &path)?;
        for i in 0..src.len() {
            let id = ParamId::from_index(i);
            assert_eq!(src.value(id), dst.value(id));
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    #[test]
    fn shape_mismatch_is_rejected() -> TrainResult<()> {
        let path = temp_path("shape");
        save_params(&sample_store(1), &path)?;
        let mut rng = TensorRng::seed_from_u64(0);
        let mut wrong = ParamStore::new();
        wrong.add("w1", rng.uniform_tensor(2, 2, -1.0, 1.0));
        wrong.add("b1", rng.uniform_tensor(1, 4, -1.0, 1.0));
        let err = load_params(&mut wrong, &path).unwrap_err();
        assert!(matches!(err, TrainError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    #[test]
    fn name_mismatch_is_rejected() -> TrainResult<()> {
        let path = temp_path("name");
        save_params(&sample_store(1), &path)?;
        let mut rng = TensorRng::seed_from_u64(0);
        let mut wrong = ParamStore::new();
        wrong.add("other", rng.uniform_tensor(3, 4, -1.0, 1.0));
        wrong.add("b1", rng.uniform_tensor(1, 4, -1.0, 1.0));
        let err = load_params(&mut wrong, &path).unwrap_err();
        assert!(matches!(err, TrainError::Mismatch(_)));
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut s = sample_store(1);
        let err = load_params(&mut s, Path::new("/nonexistent/ckpt.json")).unwrap_err();
        assert!(matches!(err, TrainError::Io(_)));
    }

    #[test]
    fn legacy_v1_files_still_load() -> TrainResult<()> {
        // A v1 checkpoint has the params at the top level and no checksum.
        let path = temp_path("v1");
        let src = sample_store(3);
        let doc = Json::Obj(vec![
            ("format_version".into(), Json::Num(1.0)),
            ("params".into(), store_params_to_json(&src)),
        ]);
        std::fs::write(&path, doc.to_string()).map_err(|e| io_err(&path, e))?;
        let mut dst = sample_store(4);
        load_params(&mut dst, &path)?;
        assert_eq!(src.value(ParamId::from_index(0)), dst.value(ParamId::from_index(0)));
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    #[test]
    fn checksum_detects_a_flipped_byte() -> TrainResult<()> {
        let path = temp_path("flip");
        save_params(&sample_store(5), &path)?;
        // Flip a byte inside the params payload (past the envelope header).
        let mut bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let target = bytes.len() / 2;
        bytes[target] ^= 0x04;
        std::fs::write(&path, &bytes).map_err(|e| io_err(&path, e))?;
        let mut dst = sample_store(5);
        let err = load_params(&mut dst, &path).unwrap_err();
        assert!(
            matches!(err, TrainError::Corrupt(_) | TrainError::Parse(_)),
            "flip must be caught, got: {err}"
        );
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    #[test]
    fn train_state_round_trips_exactly() -> TrainResult<()> {
        let path = temp_path("state");
        let state = sample_state(6);
        save_train_state(&state, &path)?;
        let (back, from_fallback) = load_train_state_with_fallback(&path)?;
        assert!(!from_fallback);
        assert_eq!(back.next_epoch, state.next_epoch);
        assert_eq!(back.step, state.step);
        assert_eq!(back.lr.to_bits(), state.lr.to_bits());
        assert_eq!(back.recoveries, state.recoveries);
        assert_eq!(back.best_val.to_bits(), state.best_val.to_bits());
        assert_eq!(back.since_best, state.since_best);
        assert_eq!(back.rng, state.rng);
        assert_eq!(back.params, state.params);
        assert_eq!(back.best_params, state.best_params);
        assert_eq!(back.adam.t, state.adam.t);
        assert_eq!(back.adam.m, state.adam.m);
        assert_eq!(back.adam.v, state.adam.v);
        assert_eq!(back.history.len(), 1);
        assert_eq!(back.history[0].loss.to_bits(), state.history[0].loss.to_bits());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(previous_generation(&path));
        Ok(())
    }

    #[test]
    fn negative_infinity_best_val_survives() -> TrainResult<()> {
        // best_val is -inf until the first evaluation; the bits-hex encoding
        // must carry it through (plain JSON numbers cannot).
        let path = temp_path("neginf");
        let mut state = sample_state(7);
        state.best_val = f64::NEG_INFINITY;
        save_train_state(&state, &path)?;
        let back = load_train_state(&path)?;
        assert!(back.best_val == f64::NEG_INFINITY);
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_generation() -> TrainResult<()> {
        let path = temp_path("generations");
        let older = sample_state(8);
        save_train_state(&older, &path)?;
        let mut newer = sample_state(8);
        newer.next_epoch = 20;
        save_train_state(&newer, &path)?; // rotates `older` to .prev
        // Corrupt the latest file.
        lasagne_testkit::flip_byte(&path, &mut Rng::seed_from_u64(1))
            .map_err(|e| io_err(&path, e))?;
        let (state, from_fallback) = load_train_state_with_fallback(&path)?;
        assert!(from_fallback, "must report the fallback generation was used");
        assert_eq!(state.next_epoch, older.next_epoch);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(previous_generation(&path));
        Ok(())
    }

    #[test]
    fn truncated_checkpoint_is_rejected_not_garbage() -> TrainResult<()> {
        let path = temp_path("truncated");
        save_train_state(&sample_state(9), &path)?;
        lasagne_testkit::truncate_file(&path, 0.6).map_err(|e| io_err(&path, e))?;
        let err = load_train_state(&path).unwrap_err();
        assert!(matches!(err, TrainError::Parse(_) | TrainError::Corrupt(_)), "{err}");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(previous_generation(&path));
        Ok(())
    }
}
