//! Model checkpointing: serialize a [`ParamStore`]'s values to JSON and
//! load them back into a freshly-constructed model of the same shape.
//!
//! The training loop already snapshots in memory for early stopping; this
//! module is for *persistence* — train once, reuse the weights across
//! processes (e.g. train on the inductive subgraph, serve on the full
//! graph later).

use std::path::Path;

use lasagne_autograd::{ParamId, ParamStore};
use lasagne_tensor::Tensor;
use lasagne_testkit::Json;

/// On-disk representation of one parameter tensor.
struct ParamRecord {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl ParamRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("cols".into(), Json::Num(self.cols as f64)),
            ("data".into(), Json::from_f32s(self.data.iter().copied())),
        ])
    }

    fn from_json(j: &Json) -> Result<ParamRecord, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("missing field '{k}'"));
        Ok(ParamRecord {
            name: field("name")?.as_str().ok_or("'name' not a string")?.to_string(),
            rows: field("rows")?.as_usize().ok_or("'rows' not an integer")?,
            cols: field("cols")?.as_usize().ok_or("'cols' not an integer")?,
            data: field("data")?.to_f32s().ok_or("'data' not a number array")?,
        })
    }
}

/// On-disk representation of a whole store.
struct Checkpoint {
    format_version: u32,
    params: Vec<ParamRecord>,
}

/// Errors raised by checkpoint IO.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem / JSON failure.
    Io(String),
    /// The checkpoint does not match the model (names, counts or shapes).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Write every parameter of `store` to `path` as JSON.
pub fn save_params(store: &ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let params = (0..store.len())
        .map(|i| {
            let id = ParamId::from_index(i);
            let t = store.value(id);
            ParamRecord {
                name: store.name(id).to_string(),
                rows: t.rows(),
                cols: t.cols(),
                data: t.as_slice().to_vec(),
            }
        })
        .collect();
    let ckpt = Checkpoint { format_version: 1, params };
    let doc = Json::Obj(vec![
        ("format_version".into(), Json::Num(ckpt.format_version as f64)),
        ("params".into(), Json::Arr(ckpt.params.iter().map(ParamRecord::to_json).collect())),
    ]);
    std::fs::write(path, doc.to_string()).map_err(|e| CheckpointError::Io(e.to_string()))
}

/// Load a checkpoint written by [`save_params`] into `store`. The store
/// must already contain parameters with identical names and shapes (i.e.
/// build the model with the same configuration first).
pub fn load_params(store: &mut ParamStore, path: &Path) -> Result<(), CheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    let doc = Json::parse(&text).map_err(|e| CheckpointError::Io(e.to_string()))?;
    let ckpt = Checkpoint {
        format_version: doc
            .get("format_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Io("missing format_version".into()))?
            as u32,
        params: doc
            .get("params")
            .and_then(Json::as_arr)
            .ok_or_else(|| CheckpointError::Io("missing params array".into()))?
            .iter()
            .map(ParamRecord::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(CheckpointError::Io)?,
    };
    if ckpt.format_version != 1 {
        return Err(CheckpointError::Mismatch(format!(
            "unsupported format version {}",
            ckpt.format_version
        )));
    }
    if ckpt.params.len() != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {} params, model has {}",
            ckpt.params.len(),
            store.len()
        )));
    }
    for (i, rec) in ckpt.params.iter().enumerate() {
        let id = ParamId::from_index(i);
        if store.name(id) != rec.name {
            return Err(CheckpointError::Mismatch(format!(
                "param {i} is '{}' in the checkpoint but '{}' in the model",
                rec.name,
                store.name(id)
            )));
        }
        if store.value(id).shape() != (rec.rows, rec.cols) {
            return Err(CheckpointError::Mismatch(format!(
                "param '{}' is {}x{} in the checkpoint but {:?} in the model",
                rec.name,
                rec.rows,
                rec.cols,
                store.value(id).shape()
            )));
        }
        let t = Tensor::from_vec(rec.rows, rec.cols, rec.data.clone())
            .map_err(|e| CheckpointError::Mismatch(e.to_string()))?;
        *store.value_mut(id) = t;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lasagne_tensor::TensorRng;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lasagne-ckpt-{name}-{}.json", std::process::id()))
    }

    fn sample_store(seed: u64) -> ParamStore {
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut s = ParamStore::new();
        s.add("w1", rng.uniform_tensor(3, 4, -1.0, 1.0));
        s.add_with_decay("b1", rng.uniform_tensor(1, 4, -1.0, 1.0), false);
        s
    }

    #[test]
    fn round_trip_preserves_values() {
        let path = temp_path("roundtrip");
        let src = sample_store(1);
        save_params(&src, &path).unwrap();
        let mut dst = sample_store(2); // same shapes, different values
        assert_ne!(
            src.value(ParamId::from_index(0)),
            dst.value(ParamId::from_index(0))
        );
        load_params(&mut dst, &path).unwrap();
        for i in 0..src.len() {
            let id = ParamId::from_index(i);
            assert_eq!(src.value(id), dst.value(id));
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let path = temp_path("shape");
        save_params(&sample_store(1), &path).unwrap();
        let mut rng = TensorRng::seed_from_u64(0);
        let mut wrong = ParamStore::new();
        wrong.add("w1", rng.uniform_tensor(2, 2, -1.0, 1.0));
        wrong.add("b1", rng.uniform_tensor(1, 4, -1.0, 1.0));
        let err = load_params(&mut wrong, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn name_mismatch_is_rejected() {
        let path = temp_path("name");
        save_params(&sample_store(1), &path).unwrap();
        let mut rng = TensorRng::seed_from_u64(0);
        let mut wrong = ParamStore::new();
        wrong.add("other", rng.uniform_tensor(3, 4, -1.0, 1.0));
        wrong.add("b1", rng.uniform_tensor(1, 4, -1.0, 1.0));
        let err = load_params(&mut wrong, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut s = sample_store(1);
        let err = load_params(&mut s, Path::new("/nonexistent/ckpt.json")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
