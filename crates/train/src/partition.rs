//! Out-of-core partitioned training and full-graph-equivalent eval
//! (DESIGN.md §14).
//!
//! Three pieces:
//!
//! * [`PartitionStore`] spills a partitioned dataset to per-partition block
//!   files — each block is the induced training subgraph of one part
//!   (ClusterGCN semantics: boundary edges dropped) plus its gathered
//!   features, labels and local train indices, wrapped in the checkpoint-v2
//!   checksum envelope so a flipped byte or truncated file always loads as
//!   a typed [`TrainError`], never as garbage nodes.
//! * [`StreamedClusterBatches`] is a [`BatchStrategy`] over a store that
//!   keeps **one** block's [`TrainBatch`] resident at a time — peak memory
//!   O(partition), not O(graph). Blocks are spilled in `partition_bfs`
//!   output order with nodes in BFS order, so the rebuilt subgraph,
//!   gathered features and cycling order are *identical* to the resident
//!   [`ClusterBatches`](lasagne_gnn::sampling::ClusterBatches) — the
//!   streamed loss curve matches the resident ClusterGCN curve **bitwise**
//!   (pinned by `tests/partition_equiv.rs`). Against full-batch training
//!   it remains the documented ClusterGCN approximation: boundary edges do
//!   not propagate.
//! * [`export_eval_program`] + [`evaluate_partitioned`] give the exact
//!   full-graph eval: record the model's `Mode::Eval` forward once as a
//!   frozen program, then evaluate it partition-by-partition through the
//!   row-demand evaluator (`lasagne_autograd::peval`) — bitwise equal to
//!   [`crate::evaluate`], with only O(partition + halo) live per part.

use std::path::{Path, PathBuf};

use lasagne_autograd::{PevalError, Program, Tape};
use lasagne_datasets::Dataset;
use lasagne_gnn::sampling::{BatchStrategy, TrainBatch};
use lasagne_gnn::{GraphContext, Mode, NodeClassifier};
use lasagne_graph::Graph;
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_testkit::Json;

use crate::checkpoint::{atomic_write_envelope, read_envelope, tensor_from_json, tensor_to_json};
use crate::error::{TrainError, TrainResult};

fn usizes_to_json(xs: impl IntoIterator<Item = usize>) -> Json {
    Json::Arr(xs.into_iter().map(|v| Json::Num(v as f64)).collect())
}

fn usizes_from_json(j: &Json, what: &str) -> TrainResult<Vec<usize>> {
    j.as_arr()
        .ok_or_else(|| TrainError::Parse(format!("'{what}' not an array")))?
        .iter()
        .map(|v| v.as_usize().ok_or_else(|| TrainError::Parse(format!("'{what}' entry not an integer"))))
        .collect()
}

fn field<'j>(j: &'j Json, k: &str) -> TrainResult<&'j Json> {
    j.get(k).ok_or_else(|| TrainError::Parse(format!("partition file missing field '{k}'")))
}

fn usize_field(j: &Json, k: &str) -> TrainResult<usize> {
    field(j, k)?.as_usize().ok_or_else(|| TrainError::Parse(format!("'{k}' not an integer")))
}

/// One spilled partition, loaded back into memory.
#[derive(Debug, Clone)]
pub struct SpilledBlock {
    /// Index of this block in the store.
    pub part: usize,
    /// Global node ids of the part's core, in `partition_bfs` output
    /// order (NOT sorted — local indexing must match the resident
    /// ClusterGCN batches exactly).
    pub core: Vec<usize>,
    /// Induced-subgraph edge list over local indices.
    pub edges: Vec<(u32, u32)>,
    /// Features of the core rows (`core.len() × d`).
    pub features: Tensor,
    /// Label per core node.
    pub labels: Vec<usize>,
    /// Local indices (into `core`) of training nodes.
    pub train_idx: Vec<usize>,
    /// Class count (shared by all blocks).
    pub num_classes: usize,
}

impl SpilledBlock {
    /// Rebuild the exact [`TrainBatch`] the resident `ClusterBatches` path
    /// would have built for this part: same `Graph::from_edges`, same
    /// derived operators, same local ordering — bitwise-identical training.
    pub fn to_train_batch(&self) -> TrainBatch {
        let sub = Graph::from_edges(self.core.len(), &self.edges);
        let ctx = GraphContext::new(&sub, self.features.clone(), self.labels.clone(), self.num_classes);
        TrainBatch { ctx, train_idx: self.train_idx.clone() }
    }
}

/// A directory of per-partition block files plus a manifest, all in the
/// checkpoint-v2 checksum envelope.
#[derive(Debug, Clone)]
pub struct PartitionStore {
    dir: PathBuf,
    num_blocks: usize,
    nodes: usize,
    num_classes: usize,
    /// Blocks holding at least one training node, in block order — the
    /// cycling order of the streamed ClusterGCN strategy.
    train_blocks: Vec<usize>,
}

impl PartitionStore {
    fn manifest_path(dir: &Path) -> PathBuf {
        dir.join("manifest.json")
    }

    fn block_path(dir: &Path, b: usize) -> PathBuf {
        dir.join(format!("block_{b:05}.json"))
    }

    /// Spill `ds` partitioned by `parts` (a `partition_bfs` result: parts in
    /// output order, nodes in BFS order) into `dir`, one envelope-checksummed
    /// file per part plus a manifest. Existing files are overwritten
    /// atomically.
    pub fn spill(dir: &Path, ds: &Dataset, parts: &[Vec<usize>]) -> TrainResult<PartitionStore> {
        std::fs::create_dir_all(dir)
            .map_err(|e| TrainError::Io(format!("{}: {e}", dir.display())))?;
        let mut is_train = vec![false; ds.num_nodes()];
        for &v in &ds.split.train {
            is_train[v] = true;
        }
        let mut train_blocks = Vec::new();
        for (b, part) in parts.iter().enumerate() {
            let train_idx: Vec<usize> = part
                .iter()
                .enumerate()
                .filter(|&(_, &orig)| is_train[orig])
                .map(|(local, _)| local)
                .collect();
            if !train_idx.is_empty() {
                train_blocks.push(b);
            }
            let sub = ds.graph.induced_subgraph(part);
            let feats = ds.features.gather_rows(part);
            let labels: Vec<usize> = part.iter().map(|&v| ds.labels[v]).collect();
            let edges_flat: Vec<usize> = sub
                .edges()
                .iter()
                .flat_map(|&(u, v)| [u as usize, v as usize])
                .collect();
            let body = Json::Obj(vec![
                ("kind".into(), Json::Str("partition_block".into())),
                ("part".into(), Json::Num(b as f64)),
                ("num_classes".into(), Json::Num(ds.num_classes as f64)),
                ("core".into(), usizes_to_json(part.iter().copied())),
                ("edges".into(), usizes_to_json(edges_flat)),
                ("labels".into(), usizes_to_json(labels)),
                ("train_idx".into(), usizes_to_json(train_idx)),
                ("features".into(), tensor_to_json(&feats)),
            ]);
            atomic_write_envelope(&Self::block_path(dir, b), body)?;
        }
        let manifest = Json::Obj(vec![
            ("kind".into(), Json::Str("partition_manifest".into())),
            ("num_blocks".into(), Json::Num(parts.len() as f64)),
            ("nodes".into(), Json::Num(ds.num_nodes() as f64)),
            ("num_classes".into(), Json::Num(ds.num_classes as f64)),
            ("train_blocks".into(), usizes_to_json(train_blocks.iter().copied())),
        ]);
        atomic_write_envelope(&Self::manifest_path(dir), manifest)?;
        Ok(PartitionStore {
            dir: dir.to_path_buf(),
            num_blocks: parts.len(),
            nodes: ds.num_nodes(),
            num_classes: ds.num_classes,
            train_blocks,
        })
    }

    /// Open an existing store by reading (and checksum-verifying) its
    /// manifest.
    pub fn open(dir: &Path) -> TrainResult<PartitionStore> {
        let body = read_envelope(&Self::manifest_path(dir))?;
        if field(&body, "kind")?.as_str() != Some("partition_manifest") {
            return Err(TrainError::Mismatch("not a partition manifest".into()));
        }
        Ok(PartitionStore {
            dir: dir.to_path_buf(),
            num_blocks: usize_field(&body, "num_blocks")?,
            nodes: usize_field(&body, "nodes")?,
            num_classes: usize_field(&body, "num_classes")?,
            train_blocks: usizes_from_json(field(&body, "train_blocks")?, "train_blocks")?,
        })
    }

    /// Number of spilled blocks (= number of parts).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Total nodes across all blocks.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Class count shared by all blocks.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Blocks with at least one training node, in cycling order.
    pub fn train_blocks(&self) -> &[usize] {
        &self.train_blocks
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Load one block, verifying its checksum envelope: corruption or
    /// truncation is a typed [`TrainError::Corrupt`]/[`TrainError::Parse`],
    /// never a silently-wrong subgraph.
    pub fn load_block(&self, b: usize) -> TrainResult<SpilledBlock> {
        if b >= self.num_blocks {
            return Err(TrainError::InvalidConfig(format!(
                "block {b} of {}",
                self.num_blocks
            )));
        }
        let body = read_envelope(&Self::block_path(&self.dir, b))?;
        if field(&body, "kind")?.as_str() != Some("partition_block") {
            return Err(TrainError::Mismatch("not a partition block".into()));
        }
        let part = usize_field(&body, "part")?;
        if part != b {
            return Err(TrainError::Mismatch(format!("block file {b} says part {part}")));
        }
        let core = usizes_from_json(field(&body, "core")?, "core")?;
        let edges_flat = usizes_from_json(field(&body, "edges")?, "edges")?;
        if edges_flat.len() % 2 != 0 {
            return Err(TrainError::Parse("odd edge array length".into()));
        }
        let edges: Vec<(u32, u32)> = edges_flat
            .chunks_exact(2)
            .map(|uv| (uv[0] as u32, uv[1] as u32))
            .collect();
        let labels = usizes_from_json(field(&body, "labels")?, "labels")?;
        let train_idx = usizes_from_json(field(&body, "train_idx")?, "train_idx")?;
        let features = tensor_from_json(field(&body, "features")?)?;
        let num_classes = usize_field(&body, "num_classes")?;
        if features.rows() != core.len() || labels.len() != core.len() {
            return Err(TrainError::Mismatch(format!(
                "block {b}: {} core nodes vs {} feature rows / {} labels",
                core.len(),
                features.rows(),
                labels.len()
            )));
        }
        for &(u, v) in &edges {
            if u as usize >= core.len() || v as usize >= core.len() {
                return Err(TrainError::Mismatch(format!(
                    "block {b}: edge ({u},{v}) outside its {} nodes",
                    core.len()
                )));
            }
        }
        for &t in &train_idx {
            if t >= core.len() {
                return Err(TrainError::Mismatch(format!(
                    "block {b}: train index {t} outside its {} nodes",
                    core.len()
                )));
            }
        }
        Ok(SpilledBlock { part, core, edges, features, labels, train_idx, num_classes })
    }
}

/// ClusterGCN batches streamed from a [`PartitionStore`]: exactly the
/// resident `ClusterBatches` cycling order and per-batch contents, with one
/// block resident at a time.
pub struct StreamedClusterBatches {
    store: PartitionStore,
    current_block: Option<usize>,
    current: Option<TrainBatch>,
}

impl StreamedClusterBatches {
    /// Stream from an existing store. Fails typed if no block holds a
    /// training node.
    pub fn new(store: PartitionStore) -> TrainResult<StreamedClusterBatches> {
        if store.train_blocks().is_empty() {
            return Err(TrainError::InvalidConfig(
                "no partition block holds a training node".into(),
            ));
        }
        Ok(StreamedClusterBatches { store, current_block: None, current: None })
    }

    /// Partition `ds` into `k` BFS-grown parts (consuming `rng` exactly like
    /// the resident `ClusterBatches::new`), spill to `dir`, and stream.
    pub fn from_dataset(
        dir: &Path,
        ds: &Dataset,
        k: usize,
        rng: &mut TensorRng,
    ) -> TrainResult<StreamedClusterBatches> {
        let parts = lasagne_graph::partition_bfs(&ds.graph, k, rng)
            .map_err(|e| TrainError::InvalidConfig(e.to_string()))?;
        StreamedClusterBatches::new(PartitionStore::spill(dir, ds, &parts)?)
    }

    /// The underlying store.
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }
}

impl BatchStrategy for StreamedClusterBatches {
    fn name(&self) -> &'static str {
        "clustergcn-streamed"
    }

    /// Loads the step's block if it is not the resident one. The trait is
    /// infallible, so a block that fails its checksum mid-training panics
    /// with the typed error's message; probe blocks up front via
    /// [`PartitionStore::load_block`] where a `Result` is needed.
    fn batch(&mut self, step: usize, _rng: &mut TensorRng) -> &TrainBatch {
        let b = self.store.train_blocks()[step % self.store.train_blocks().len()];
        if self.current_block != Some(b) {
            let block = self
                .store
                .load_block(b)
                .unwrap_or_else(|e| panic!("streamed batch {b}: {e}"));
            self.current = Some(block.to_train_batch());
            self.current_block = Some(b);
        }
        self.current.as_ref().expect("block resident")
    }
}

/// Record `model`'s `Mode::Eval` forward over `ctx` once and export it as a
/// frozen program plus its weight table. The recording itself evaluates the
/// full graph (define-by-run); everything *after* — any number of
/// [`evaluate_partitioned`] sweeps — is O(partition) per part. Models whose
/// eval forward contains train-only ops fail typed.
pub fn export_eval_program(
    model: &dyn NodeClassifier,
    ctx: &GraphContext,
    rng: &mut TensorRng,
) -> TrainResult<(Program, Vec<(String, Tensor)>)> {
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, ctx, Mode::Eval, rng);
    let program = tape
        .export_program(model.store(), out.logits)
        .map_err(|e| TrainError::Mismatch(e.to_string()))?;
    let store = model.store();
    let weights: Vec<(String, Tensor)> = (0..store.len())
        .map(|i| {
            let id = lasagne_autograd::ParamId::from_index(i);
            (store.name(id).to_string(), store.value(id).clone())
        })
        .collect();
    Ok((program, weights))
}

/// Evaluate an exported program partition-by-partition; bitwise equal to
/// the resident [`crate::evaluate`] wherever the program is row-local, with
/// typed fallback guidance when it is not (GAT-style programs).
pub fn evaluate_partitioned(
    program: &Program,
    weights: &[(String, Tensor)],
    parts: &[Vec<usize>],
) -> TrainResult<Tensor> {
    lasagne_autograd::evaluate_program_partitioned(program, weights, parts).map_err(|e| match e {
        PevalError::BadPartition(_) | PevalError::RowOutOfRange { .. } => {
            TrainError::InvalidConfig(e.to_string())
        }
        _ => TrainError::Mismatch(e.to_string()),
    })
}
