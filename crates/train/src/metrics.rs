//! Classification metrics.

use lasagne_tensor::Tensor;

/// Accuracy of row-wise argmax predictions over the node subset `idx`.
pub fn accuracy(logits: &Tensor, labels: &[usize], idx: &[usize]) -> f64 {
    if idx.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let hits = idx.iter().filter(|&&i| preds[i] == labels[i]).count();
    hits as f64 / idx.len() as f64
}

/// Per-class (true-positive, false-positive, false-negative) counts.
pub fn confusion_counts(
    logits: &Tensor,
    labels: &[usize],
    idx: &[usize],
    classes: usize,
) -> Vec<(usize, usize, usize)> {
    let preds = logits.argmax_rows();
    let mut counts = vec![(0usize, 0usize, 0usize); classes];
    for &i in idx {
        let (p, t) = (preds[i], labels[i]);
        if p == t {
            counts[t].0 += 1;
        } else {
            counts[p].1 += 1;
            counts[t].2 += 1;
        }
    }
    counts
}

/// Macro-averaged F1 over the node subset.
pub fn macro_f1(logits: &Tensor, labels: &[usize], idx: &[usize], classes: usize) -> f64 {
    let counts = confusion_counts(logits, labels, idx, classes);
    let mut f1_sum = 0.0;
    let mut seen = 0usize;
    for &(tp, fp, fne) in &counts {
        if tp + fp + fne == 0 {
            continue; // class absent from this subset
        }
        seen += 1;
        let denom = 2 * tp + fp + fne;
        if denom > 0 {
            f1_sum += 2.0 * tp as f64 / denom as f64;
        }
    }
    if seen == 0 {
        0.0
    } else {
        f1_sum / seen as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits_for(preds: &[usize], classes: usize) -> Tensor {
        Tensor::from_fn(preds.len(), classes, |i, j| if j == preds[i] { 1.0 } else { 0.0 })
    }

    #[test]
    fn accuracy_counts_hits() {
        let logits = logits_for(&[0, 1, 2, 1], 3);
        let labels = [0, 1, 1, 1];
        assert_eq!(accuracy(&logits, &labels, &[0, 1, 2, 3]), 0.75);
        assert_eq!(accuracy(&logits, &labels, &[2]), 0.0);
        assert_eq!(accuracy(&logits, &labels, &[]), 0.0);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let logits = logits_for(&[0, 1, 2], 3);
        let labels = [0, 1, 2];
        assert!((macro_f1(&logits, &labels, &[0, 1, 2], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_penalizes_minority_class_errors_more_than_accuracy() {
        // 9 correct majority predictions, minority class always wrong.
        let mut preds = vec![0usize; 10];
        preds[9] = 0; // true label 1 predicted as 0
        let logits = logits_for(&preds, 2);
        let mut labels = vec![0usize; 10];
        labels[9] = 1;
        let idx: Vec<usize> = (0..10).collect();
        let acc = accuracy(&logits, &labels, &idx);
        let f1 = macro_f1(&logits, &labels, &idx, 2);
        assert!(acc > 0.89);
        assert!(f1 < acc, "macro-F1 {f1} must be below accuracy {acc}");
    }

    #[test]
    fn confusion_counts_are_consistent() {
        let logits = logits_for(&[0, 1, 0], 2);
        let labels = [0, 0, 1];
        // preds [0,1,0] vs labels [0,0,1]:
        // class 0 — tp: node 0; fp: node 2 (pred 0, true 1); fn: node 1.
        // class 1 — tp: none; fp: node 1; fn: node 2.
        let c = confusion_counts(&logits, &labels, &[0, 1, 2], 2);
        assert_eq!(c[0], (1, 1, 1));
        assert_eq!(c[1], (0, 1, 1));
        assert_eq!(confusion_counts(&logits, &labels, &[0], 2)[0], (1, 0, 0));
    }
}
