//! Training loop, metrics, multi-seed experiment runner and table
//! formatting — the harness behind every table and figure of the paper.
//!
//! The protocol follows §5.1.3: Adam, at most `max_epochs` epochs, early
//! stopping when validation accuracy has not improved for `patience`
//! epochs, test accuracy reported at the best-validation checkpoint, and
//! every experiment repeated over seeds with mean±std reported.
//!
//! # Example
//! ```no_run
//! use lasagne_datasets::{Dataset, DatasetId};
//! use lasagne_gnn::{models::Gcn, GraphContext, Hyper};
//! use lasagne_gnn::sampling::FullBatch;
//! use lasagne_train::{fit, TrainConfig};
//! use lasagne_tensor::TensorRng;
//!
//! let ds = Dataset::generate(DatasetId::Cora, 0);
//! let hyper = Hyper::for_dataset(DatasetId::Cora);
//! let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
//! let ctx = GraphContext::from_dataset(&ds);
//! let mut strategy = FullBatch::from_dataset(&ds);
//! let result = fit(
//!     &mut model,
//!     &mut strategy,
//!     &ctx,
//!     &ds.split,
//!     &TrainConfig::from_hyper(&hyper),
//!     &mut TensorRng::seed_from_u64(0),
//! );
//! println!("test accuracy: {:.1}%", 100.0 * result.test_acc);
//! ```

mod checkpoint;
mod error;
mod metrics;
mod partition;
mod runner;
mod table;
mod trainer;

pub use checkpoint::{
    atomic_write_envelope, fnv1a64, load_params, load_train_state,
    load_train_state_with_fallback, named_param_from_json, named_param_to_json,
    previous_generation, read_envelope, save_params, save_train_state, tensor_from_json,
    tensor_to_json, TrainState,
};
pub use error::{TrainError, TrainResult};
pub use metrics::{accuracy, confusion_counts, macro_f1};
pub use partition::{
    evaluate_partitioned, export_eval_program, PartitionStore, SpilledBlock,
    StreamedClusterBatches,
};
pub use runner::{run_seeds, run_seeds_fallible, SeedSummary};
pub use table::Table;
pub use trainer::{
    evaluate, fit, fit_with_callback, fit_with_options, try_fit, CheckpointPolicy, EpochCallback,
    EpochStats, FitOptions, FitResult, TrainConfig,
};

/// Former name of the unified [`TrainError`] (the checkpoint module used to
/// carry its own error enum).
pub type CheckpointError = TrainError;
