//! The training stack's error type: every failure the harness can survive
//! or must report — I/O, parse, model/checkpoint mismatches, corrupted
//! checkpoints, divergence that exhausted its retries, and simulated
//! crashes from the fault-injection harness — surfaces as a [`TrainError`]
//! instead of a panic or silently-NaN weights.

use std::fmt;

/// Convenience alias for fallible training-stack operations.
pub type TrainResult<T> = std::result::Result<T, TrainError>;

/// Everything that can go wrong in the training/checkpointing stack.
#[derive(Clone, Debug, PartialEq)]
pub enum TrainError {
    /// Filesystem failure (path + OS error).
    Io(String),
    /// A checkpoint file exists but is not valid JSON / misses fields.
    Parse(String),
    /// The checkpoint does not match the model (names, counts or shapes) or
    /// uses an unsupported format version.
    Mismatch(String),
    /// The checkpoint's content checksum does not match its payload: the
    /// file was truncated or bit-flipped. Never loaded into weights.
    Corrupt(String),
    /// Training hit NaN/Inf and the recovery policy (rollback + LR halving)
    /// ran out of retries.
    Diverged {
        /// Epoch at which the final, unrecoverable divergence occurred.
        epoch: usize,
        /// Recovery attempts consumed before giving up.
        recoveries: usize,
        /// What was non-finite (loss, gradients, or parameters).
        reason: String,
    },
    /// A [`lasagne_testkit::FaultPlan`] simulated process death at the top
    /// of this epoch (tests of the resume path).
    Crashed {
        /// Epoch whose work never started.
        epoch: usize,
    },
    /// A caller-supplied configuration or table row was invalid.
    InvalidConfig(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Io(e) => write!(f, "checkpoint io error: {e}"),
            TrainError::Parse(e) => write!(f, "checkpoint parse error: {e}"),
            TrainError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
            TrainError::Corrupt(e) => write!(f, "checkpoint corrupt: {e}"),
            TrainError::Diverged { epoch, recoveries, reason } => write!(
                f,
                "training diverged at epoch {epoch} after {recoveries} recovery attempt(s): {reason}"
            ),
            TrainError::Crashed { epoch } => {
                write!(f, "simulated crash at the top of epoch {epoch}")
            }
            TrainError::InvalidConfig(e) => write!(f, "invalid config: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_structured_and_specific() {
        let e = TrainError::Diverged { epoch: 12, recoveries: 3, reason: "loss = NaN".into() };
        let s = e.to_string();
        assert!(s.contains("epoch 12") && s.contains("3 recovery") && s.contains("loss = NaN"));
        assert!(TrainError::Corrupt("checksum".into()).to_string().contains("corrupt"));
        assert!(TrainError::Crashed { epoch: 4 }.to_string().contains("epoch 4"));
    }
}
