//! Out-of-core fault coverage: spilled partition blocks live in the same
//! checksum envelope as checkpoints, so a flipped bit or a truncated file
//! must always surface as a typed [`TrainError`] — never load as a
//! silently-wrong subgraph. Deterministic fault injection via
//! `lasagne_testkit::fault`, same as the checkpoint suite.

use std::path::PathBuf;

use lasagne_datasets::{Dataset, DatasetId};
use lasagne_graph::partition_bfs;
use lasagne_tensor::TensorRng;
use lasagne_testkit::rng::Rng;
use lasagne_testkit::{flip_byte, truncate_file};
use lasagne_train::{PartitionStore, SpilledBlock, TrainError};

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lasagne-partfault-{name}-{}", std::process::id()))
}

fn spill(dir: &PathBuf) -> (Dataset, PartitionStore) {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let parts = partition_bfs(&ds.graph, 3, &mut TensorRng::seed_from_u64(1)).expect("partition");
    let store = PartitionStore::spill(dir, &ds, &parts).expect("spill");
    (ds, store)
}

fn block_path(dir: &PathBuf, b: usize) -> PathBuf {
    dir.join(format!("block_{b:05}.json"))
}

fn assert_same_block(a: &SpilledBlock, b: &SpilledBlock) {
    assert_eq!(a.part, b.part);
    assert_eq!(a.core, b.core);
    assert_eq!(a.edges, b.edges);
    assert_eq!(a.labels, b.labels);
    assert_eq!(a.train_idx, b.train_idx);
    let ab: Vec<u32> = a.features.as_slice().iter().map(|v| v.to_bits()).collect();
    let bb: Vec<u32> = b.features.as_slice().iter().map(|v| v.to_bits()).collect();
    assert_eq!(ab, bb, "feature payloads differ");
}

#[test]
fn flipped_bits_in_block_files_always_fail_typed_or_load_pristine() {
    let dir = temp_dir("flip");
    let (_ds, store) = spill(&dir);
    let pristine: Vec<SpilledBlock> =
        (0..store.num_blocks()).map(|b| store.load_block(b).expect("pristine")).collect();

    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for trial in 0..24 {
        let b = trial % store.num_blocks();
        let path = block_path(&dir, b);
        let original = std::fs::read(&path).expect("read block");
        let (offset, was, now) = flip_byte(&path, &mut rng).expect("flip");
        match store.load_block(b) {
            // The expected outcomes: checksum mismatch, unparseable JSON,
            // or a structural/version mismatch.
            Err(
                TrainError::Corrupt(_)
                | TrainError::Parse(_)
                | TrainError::Io(_)
                | TrainError::Mismatch(_),
            ) => {}
            // One benign corner exists: a flip inside the checksum's hex
            // string that only changes letter case parses to the same u64.
            // Loading is then allowed — but only if the payload is exactly
            // the pristine block, bit for bit. Anything else is garbage.
            Ok(loaded) => assert_same_block(&pristine[b], &loaded),
            Err(e) => panic!(
                "trial {trial}: flip at byte {offset} ({was:#04x}->{now:#04x}) \
                 produced a non-storage error: {e}"
            ),
        }
        std::fs::write(&path, &original).expect("restore block");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_block_files_always_fail_typed() {
    let dir = temp_dir("trunc");
    let (_ds, store) = spill(&dir);
    let path = block_path(&dir, 0);
    let original = std::fs::read(&path).expect("read block");

    for &fraction in &[0.0, 0.1, 0.5, 0.9, 0.999] {
        std::fs::write(&path, &original).expect("restore block");
        truncate_file(&path, fraction).expect("truncate");
        match store.load_block(0) {
            Err(TrainError::Parse(_) | TrainError::Corrupt(_) | TrainError::Io(_)) => {}
            Ok(_) => panic!("block truncated to {fraction} of its bytes still loaded"),
            Err(e) => panic!("truncation to {fraction} produced a non-storage error: {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_and_mislabeled_blocks_fail_typed() {
    let dir = temp_dir("missing");
    let (_ds, store) = spill(&dir);

    // Deleted block file → Io, not a panic.
    let path = block_path(&dir, 1);
    std::fs::remove_file(&path).expect("remove");
    match store.load_block(1) {
        Err(TrainError::Io(_)) => {}
        other => panic!("expected Io for a missing block, got {other:?}"),
    }

    // A block index past the manifest → InvalidConfig.
    match store.load_block(99) {
        Err(TrainError::InvalidConfig(_)) => {}
        other => panic!("expected InvalidConfig for block 99, got {other:?}"),
    }

    // A block file copied into the wrong slot → Mismatch (part index is
    // stored in the body and cross-checked).
    std::fs::copy(block_path(&dir, 0), &path).expect("copy");
    match store.load_block(1) {
        Err(TrainError::Mismatch(_)) => {}
        other => panic!("expected Mismatch for a mislabeled block, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_manifests_fail_typed_on_open() {
    let dir = temp_dir("manifest");
    let (_ds, _store) = spill(&dir);
    let path = dir.join("manifest.json");

    truncate_file(&path, 0.5).expect("truncate");
    match PartitionStore::open(&dir) {
        Err(TrainError::Parse(_) | TrainError::Corrupt(_) | TrainError::Io(_)) => {}
        other => panic!("expected a typed storage error opening a torn manifest, got {other:?}"),
    }

    // A block file renamed over the manifest parses and checksums fine but
    // is the wrong kind — refused typed.
    std::fs::copy(block_path(&dir, 0), &path).expect("copy");
    match PartitionStore::open(&dir) {
        Err(TrainError::Mismatch(_)) => {}
        other => panic!("expected Mismatch for a wrong-kind manifest, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
