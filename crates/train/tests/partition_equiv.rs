//! The partition-equivalence harness (DESIGN.md §14) — out-of-core
//! execution is pinned to the resident path at two strengths:
//!
//! * **Bitwise, wherever exactness is claimed.** Partitioned full-graph
//!   eval through the row-demand evaluator must reproduce the resident
//!   [`lasagne_train::evaluate`] logits to the bit (`to_bits` equality)
//!   for GCN and all four Lasagne aggregators, at 1 and 4 threads and
//!   across partition counts. Streamed ClusterGCN training from spilled
//!   blocks must reproduce the resident in-memory `ClusterBatches` run —
//!   loss curve, validation accuracies and final weights — to the bit.
//! * **Tolerance, where the algorithm itself approximates.** ClusterGCN
//!   drops boundary edges by construction, so against *full-batch*
//!   training the contract is behavioral: the streamed loss decreases and
//!   the trained model beats chance. That gap is the method's, not the
//!   storage layer's.
//!
//! Programs that are not row-local (GAT's attention normalizes over
//! graph-sized softmax denominators) must be refused with a typed error at
//! plan time — never silently wrong rows.

use std::path::PathBuf;

use lasagne_core::{AggregatorKind, Lasagne, LasagneConfig};
use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::models::{Gat, Gcn};
use lasagne_gnn::sampling::ClusterBatches;
use lasagne_gnn::{GraphContext, Hyper, NodeClassifier};
use lasagne_graph::generators::{dc_sbm, DcSbmConfig};
use lasagne_graph::{partition_bfs, Graph};
use lasagne_tensor::{Tensor, TensorRng};
use lasagne_train::{
    accuracy, evaluate, evaluate_partitioned, export_eval_program, fit, FitResult,
    StreamedClusterBatches, TrainConfig, TrainError,
};

const IN_DIM: usize = 6;
const CLASSES: usize = 3;

/// Same 24-node planted-partition context the gradcheck and frozen-path
/// sweeps use, plus the generating graph (the partitioner needs it).
fn tiny_ctx(seed: u64) -> (Graph, GraphContext) {
    let mut rng = TensorRng::seed_from_u64(seed);
    let (g, labels) = dc_sbm(
        &DcSbmConfig {
            nodes: 24,
            classes: CLASSES,
            avg_degree: 4.0,
            homophily: 0.9,
            power_exponent: 2.5,
            max_weight_ratio: 20.0,
        },
        &mut rng,
    );
    let features = lasagne_datasets::generate_features(
        &g,
        &labels,
        CLASSES,
        &lasagne_datasets::FeatureConfig {
            dim: IN_DIM,
            signal: 1.5,
            noise_scale: 0.5,
            degree_noise_exponent: 0.3,
            mask_base: 0.0,
        },
        &mut rng,
    );
    let ctx = GraphContext::new(&g, features, labels, CLASSES);
    (g, ctx)
}

fn tiny_hyper() -> Hyper {
    Hyper {
        hidden: 4,
        depth: 2,
        dropout_keep: 1.0,
        gat_heads: 2,
        sgc_k: 2,
        ..Hyper::default()
    }
}

fn lasagne_model(agg: AggregatorKind, n: usize) -> Box<dyn NodeClassifier> {
    let cfg = LasagneConfig::from_hyper(&tiny_hyper(), agg);
    Box::new(Lasagne::new(IN_DIM, CLASSES, Some(n), &cfg, 5))
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Export the eval program once, then check every (thread count, partition
/// count) combination reproduces the resident logits bitwise.
fn assert_partitioned_eval_matches(name: &str, model: &dyn NodeClassifier, g: &Graph, ctx: &GraphContext) {
    for &threads in &[1usize, 4] {
        lasagne_par::set_threads(threads);
        let resident = evaluate(model, ctx, &mut TensorRng::seed_from_u64(7));
        let (program, weights) =
            export_eval_program(model, ctx, &mut TensorRng::seed_from_u64(7)).expect(name);
        for &k in &[1usize, 3, 5] {
            let parts = partition_bfs(g, k, &mut TensorRng::seed_from_u64(11)).expect("partition");
            let got = evaluate_partitioned(&program, &weights, &parts)
                .unwrap_or_else(|e| panic!("{name} k={k}: {e}"));
            assert_eq!(
                bits(&got),
                bits(&resident),
                "{name} @ {threads} thread(s), k={k}: partitioned eval differs from resident"
            );
        }
    }
    lasagne_par::set_threads(1);
}

#[test]
fn partitioned_eval_is_bitwise_for_gcn_and_all_lasagne_aggregators() {
    let (g, ctx) = tiny_ctx(5);
    let n = ctx.num_nodes();
    let gcn = Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    assert_partitioned_eval_matches("gcn", &gcn, &g, &ctx);
    for agg in [
        AggregatorKind::Weighted,
        AggregatorKind::MaxPooling,
        AggregatorKind::Stochastic,
        AggregatorKind::Mean,
    ] {
        let model = lasagne_model(agg, n);
        assert_partitioned_eval_matches(agg.label(), model.as_ref(), &g, &ctx);
    }
}

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lasagne-partequiv-{name}-{}", std::process::id()))
}

fn train_cfg(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        patience: 1000, // no early stop: keeps trajectories comparable
        lr: 0.02,
        eval_every: 2,
        ..TrainConfig::default()
    }
}

/// Bitwise comparison of everything deterministic in a fit result
/// (`train_seconds`/`mean_epoch_seconds` are wall clock and excluded).
fn assert_fit_bitwise_equal(a: &FitResult, b: &FitResult) {
    assert_eq!(a.epochs, b.epochs, "epoch counts differ");
    assert_eq!(a.best_val_acc.to_bits(), b.best_val_acc.to_bits(), "best_val_acc differs");
    assert_eq!(a.test_acc.to_bits(), b.test_acc.to_bits(), "test_acc differs");
    assert_eq!(a.history.len(), b.history.len(), "history lengths differ");
    for (ea, eb) in a.history.iter().zip(&b.history) {
        assert_eq!(ea.epoch, eb.epoch);
        assert_eq!(ea.loss.to_bits(), eb.loss.to_bits(), "loss differs at epoch {}", ea.epoch);
        assert_eq!(
            ea.val_acc.map(f64::to_bits),
            eb.val_acc.map(f64::to_bits),
            "val_acc differs at epoch {}",
            ea.epoch
        );
    }
}

#[test]
fn streamed_training_is_bitwise_equal_to_resident_clustergcn() {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let ctx = GraphContext::from_dataset(&ds);
    let cfg = train_cfg(6);
    let k = 4;

    // Resident reference: all cluster subgraphs held in memory at once.
    let mut resident_model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let mut resident_rng = TensorRng::seed_from_u64(9);
    let mut resident = ClusterBatches::new(&ds, k, &mut resident_rng);
    let r_res = fit(&mut resident_model, &mut resident, &ctx, &ds.split, &cfg, &mut resident_rng);

    // Streamed: same partition, spilled to disk, one block resident at a
    // time. Identical rng consumption (one partition_bfs call), identical
    // cycling order.
    let dir = temp_dir("streamed");
    let mut streamed_model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let mut streamed_rng = TensorRng::seed_from_u64(9);
    let mut streamed =
        StreamedClusterBatches::from_dataset(&dir, &ds, k, &mut streamed_rng).expect("spill");
    assert_eq!(streamed.store().num_blocks(), k, "one block file per part");
    assert_eq!(streamed.store().nodes(), ds.num_nodes());
    let r_str = fit(&mut streamed_model, &mut streamed, &ctx, &ds.split, &cfg, &mut streamed_rng);

    assert_fit_bitwise_equal(&r_res, &r_str);
    // Final weights, not just the curve: the models are interchangeable.
    let res_store = resident_model.store();
    let str_store = streamed_model.store();
    assert_eq!(res_store.len(), str_store.len());
    for (id, t) in res_store.iter() {
        assert_eq!(
            bits(t),
            bits(str_store.value(id)),
            "weight '{}' diverged between resident and streamed training",
            res_store.name(id)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streamed_clustergcn_vs_full_batch_is_a_tolerance_contract() {
    // The documented approximation: ClusterGCN never propagates across
    // boundary edges, so no bitwise claim is made against full-batch
    // training. The pinned contract is behavioral — training makes
    // progress and the result beats chance on the training split.
    let ds = Dataset::generate(DatasetId::Cora, 1);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let ctx = GraphContext::from_dataset(&ds);
    let dir = temp_dir("tolerance");
    let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 1);
    let mut rng = TensorRng::seed_from_u64(17);
    let mut streamed = StreamedClusterBatches::from_dataset(&dir, &ds, 4, &mut rng).expect("spill");
    let r = fit(&mut model, &mut streamed, &ctx, &ds.split, &train_cfg(10), &mut rng);

    let first = r.history.first().expect("history").loss;
    let last = r.history.last().expect("history").loss;
    assert!(
        last < first,
        "streamed ClusterGCN loss did not decrease: {first} -> {last}"
    );
    let logits = evaluate(&model, &ctx, &mut TensorRng::seed_from_u64(7));
    let acc = accuracy(&logits, &ctx.labels, &ds.split.train);
    let chance = 1.0 / ds.num_classes as f64;
    assert!(
        acc > 1.5 * chance,
        "streamed-trained model does not beat chance: acc {acc:.3} vs chance {chance:.3}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_row_local_programs_and_bad_covers_fail_typed() {
    let (g, ctx) = tiny_ctx(5);

    // GAT's attention softmax is graph-global: the planner must refuse it
    // up front rather than stream wrong rows.
    let gat = Gat::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    let (program, weights) =
        export_eval_program(&gat, &ctx, &mut TensorRng::seed_from_u64(7)).expect("export");
    let parts = partition_bfs(&g, 3, &mut TensorRng::seed_from_u64(11)).expect("partition");
    match evaluate_partitioned(&program, &weights, &parts) {
        Err(TrainError::Mismatch(msg)) => {
            assert!(msg.contains("row-local"), "unexpected message: {msg}")
        }
        other => panic!("expected typed non-row-local refusal, got {other:?}"),
    }

    // A partition that is not an exact cover of the nodes is refused too.
    let gcn = Gcn::new(IN_DIM, CLASSES, &tiny_hyper(), 3);
    let (program, weights) =
        export_eval_program(&gcn, &ctx, &mut TensorRng::seed_from_u64(7)).expect("export");
    let missing: Vec<Vec<usize>> = vec![(0..10).collect()]; // nodes 10..24 uncovered
    match evaluate_partitioned(&program, &weights, &missing) {
        Err(TrainError::InvalidConfig(_)) => {}
        other => panic!("expected typed bad-cover refusal, got {other:?}"),
    }
}
