//! End-to-end trace determinism for a real training run.
//!
//! Two claims, both load-bearing for the observability layer:
//!
//! 1. `--trace-deterministic` semantics: two identical-seed runs under a
//!    deterministic sink produce *byte-identical* JSONL artifacts (span
//!    tree shape, counts and counters are all functions of the run, and
//!    durations are zeroed).
//! 2. Heisenberg check: tracing must not perturb training. A traced run
//!    and an untraced run from the same seeds end with bitwise-identical
//!    weights-only checkpoints. (Weights-only, because train-state
//!    checkpoints record wall-clock times that differ between any two
//!    runs, traced or not.)
//!
//! One `#[test]` only: the trace sink and the pool thread count are
//! process-global, so this cannot share a binary with concurrent tests.

use std::path::PathBuf;

use lasagne_datasets::{Dataset, DatasetId};
use lasagne_gnn::models::Gcn;
use lasagne_gnn::sampling::FullBatch;
use lasagne_gnn::{GraphContext, Hyper, NodeClassifier};
use lasagne_obs::TraceSink;
use lasagne_tensor::TensorRng;
use lasagne_train::{fit, save_params, TrainConfig};

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lasagne_trace_test_{}_{name}", std::process::id()))
}

/// One small fixed-seed training run; returns the weights-only checkpoint
/// bytes and, when traced, the JSONL artifact text.
fn train_once(traced: Option<bool>) -> (Vec<u8>, Option<String>) {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let mut model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(0);
    let cfg = TrainConfig {
        max_epochs: 3,
        patience: 10,
        lr: 0.02,
        weight_decay: 5e-4,
        eval_every: 1,
        ..TrainConfig::default()
    };

    let sink = traced.map(TraceSink::start);
    let _ = fit(&mut model, &mut strat, &ctx, &ds.split, &cfg, &mut rng);
    let jsonl = sink.map(|s| s.finish().to_jsonl());

    let path = tmp("params.json");
    save_params(model.store_mut(), &path).expect("save_params");
    let bytes = std::fs::read(&path).expect("read checkpoint");
    let _ = std::fs::remove_file(&path);
    (bytes, jsonl)
}

#[test]
fn traces_are_deterministic_and_tracing_never_perturbs_training() {
    // (1) Same seeds + deterministic sink ⇒ byte-identical artifacts.
    let (ckpt_a, trace_a) = train_once(Some(true));
    let (ckpt_b, trace_b) = train_once(Some(true));
    let (trace_a, trace_b) = (trace_a.unwrap(), trace_b.unwrap());
    assert!(
        trace_a.contains("\"epoch\"") && trace_a.contains("\"forward\""),
        "trace is missing the training spans:\n{trace_a}"
    );
    assert_eq!(trace_a, trace_b, "deterministic traces differ between identical runs");
    assert_eq!(ckpt_a, ckpt_b, "identical runs produced different weights");

    // (2) Timed tracing vs no tracing at all: same final weights, bit for
    // bit. The sink only ever *observes* the run.
    let (ckpt_timed, trace_timed) = train_once(Some(false));
    let (ckpt_plain, _) = train_once(None);
    assert!(trace_timed.unwrap().contains("\"total_ns\""));
    assert_eq!(
        ckpt_timed, ckpt_plain,
        "tracing changed the training trajectory (checkpoints differ)"
    );
    assert_eq!(ckpt_plain, ckpt_a, "traced-deterministic vs untraced weights differ");
}
