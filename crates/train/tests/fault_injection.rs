//! Robustness integration tests: deterministic fault injection against the
//! full training stack (ISSUE 2 acceptance criteria).
//!
//! * A NaN poisoned into a chosen gradient step triggers rollback +
//!   LR-halving and the run still converges to a finite result.
//! * A corrupted/truncated checkpoint is caught by its checksum and the
//!   previous generation is loaded — resumed training still reproduces the
//!   uninterrupted run.
//! * A simulated kill at epoch *k* plus `resume` reproduces the
//!   uninterrupted run's trajectory **bit for bit**.

use std::path::PathBuf;

use lasagne_autograd::ParamStore;
use lasagne_datasets::{Dataset, DatasetId, Split};
use lasagne_gnn::models::Gcn;
use lasagne_gnn::sampling::FullBatch;
use lasagne_gnn::{GraphContext, Hyper, NodeClassifier};
use lasagne_tensor::TensorRng;
use lasagne_testkit::rng::Rng;
use lasagne_testkit::FaultPlan;
use lasagne_train::{
    fit_with_options, load_params, load_train_state, save_params, try_fit, CheckpointPolicy,
    FitOptions, FitResult, TrainConfig, TrainError, TrainResult,
};

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lasagne-faultinj-{name}-{}.json", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(lasagne_train::previous_generation(path));
}

/// One complete, freshly-seeded training setup (model + data + rng).
struct Setup {
    ds: Dataset,
    model: Gcn,
    ctx: GraphContext,
    strat: FullBatch,
    rng: TensorRng,
}

fn setup(seed: u64) -> Setup {
    let ds = Dataset::generate(DatasetId::Cora, seed);
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let model = Gcn::new(ds.num_features(), ds.num_classes, &hyper, seed);
    let ctx = GraphContext::from_dataset(&ds);
    let strat = FullBatch::from_dataset(&ds);
    let rng = TensorRng::seed_from_u64(seed);
    Setup { ds, model, ctx, strat, rng }
}

fn cfg(max_epochs: usize) -> TrainConfig {
    TrainConfig {
        max_epochs,
        patience: 1000, // no early stop: keeps trajectories comparable
        lr: 0.02,
        eval_every: 1,
        ..TrainConfig::default()
    }
}

fn run(s: &mut Setup, cfg: &TrainConfig, opts: FitOptions<'_>) -> TrainResult<FitResult> {
    let sp: Split = s.ds.split.clone();
    fit_with_options(&mut s.model, &mut s.strat, &s.ctx, &sp, cfg, &mut s.rng, opts)
}

/// Bitwise comparison of everything deterministic in a fit result
/// (`train_seconds` is wall clock and excluded).
fn assert_bitwise_equal(a: &FitResult, b: &FitResult) {
    assert_eq!(a.epochs, b.epochs, "epoch counts differ");
    assert_eq!(a.best_val_acc.to_bits(), b.best_val_acc.to_bits(), "best_val_acc differs");
    assert_eq!(a.test_acc.to_bits(), b.test_acc.to_bits(), "test_acc differs");
    for (ea, eb) in a.history.iter().zip(&b.history) {
        assert_eq!(ea.epoch, eb.epoch);
        assert_eq!(
            ea.loss.to_bits(),
            eb.loss.to_bits(),
            "loss differs at epoch {}",
            ea.epoch
        );
        assert_eq!(
            ea.val_acc.map(f64::to_bits),
            eb.val_acc.map(f64::to_bits),
            "val_acc differs at epoch {}",
            ea.epoch
        );
    }
}

#[test]
fn nan_injection_triggers_recovery_and_still_converges() {
    let mut s = setup(40);
    let plan = FaultPlan::none().with_grad_nan_at(4);
    let result = run(
        &mut s,
        &cfg(30),
        FitOptions { fault: Some(&plan), ..FitOptions::default() },
    )
    .expect("one NaN step must be recoverable");
    assert_eq!(result.recoveries, 1, "exactly one rollback + LR halving");
    assert_eq!(result.epochs, 30, "the retried epoch is re-run, not skipped");
    assert!(result.history.iter().all(|e| e.loss.is_finite()), "no NaN ever reaches the history");
    assert!(result.test_acc.is_finite() && result.best_val_acc.is_finite());
    assert!(
        result.test_acc > s.ds.majority_baseline(),
        "post-recovery run must still learn: {:.3} vs majority {:.3}",
        result.test_acc,
        s.ds.majority_baseline()
    );
}

#[test]
fn persistent_divergence_exhausts_retries_with_structured_error() {
    let mut s = setup(41);
    // Poison the first three global steps: epoch 0 fails, both retries fail.
    let plan = FaultPlan::none().with_grad_nan_at(0).with_grad_nan_at(1).with_grad_nan_at(2);
    let config = TrainConfig { max_recoveries: 2, ..cfg(10) };
    let err = run(
        &mut s,
        &config,
        FitOptions { fault: Some(&plan), ..FitOptions::default() },
    )
    .unwrap_err();
    match err {
        TrainError::Diverged { epoch, recoveries, ref reason } => {
            assert_eq!(epoch, 0);
            assert_eq!(recoveries, 2, "both allowed recoveries were consumed");
            assert!(reason.contains("gradient"), "reason: {reason}");
        }
        other => panic!("expected Diverged, got: {other}"),
    }
    assert!(
        !s.model.store().values_non_finite(),
        "even a failed run must not leave NaN weights behind"
    );
}

#[test]
fn crash_at_epoch_k_then_resume_is_bit_identical() {
    let path = temp_path("resume");
    cleanup(&path);
    let config = cfg(12);

    // Uninterrupted reference run.
    let mut a = setup(42);
    let sp = a.ds.split.clone();
    let baseline = try_fit(&mut a.model, &mut a.strat, &a.ctx, &sp, &config, &mut a.rng).unwrap();

    // Same run, killed at the top of epoch 5 with per-epoch checkpoints.
    let mut b = setup(42);
    let plan = FaultPlan::none().with_crash_at_epoch(5);
    let err = run(
        &mut b,
        &config,
        FitOptions {
            fault: Some(&plan),
            checkpoint: Some(CheckpointPolicy::every_epoch(path.clone())),
            ..FitOptions::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, TrainError::Crashed { epoch: 5 }), "{err}");
    let saved = load_train_state(&path).expect("checkpoint must exist after the crash");
    assert_eq!(saved.next_epoch, 5, "epochs 0..=4 completed before the kill");

    // Fresh process: resume from the checkpoint and finish.
    let mut c = setup(42);
    let resumed = run(
        &mut c,
        &config,
        FitOptions {
            checkpoint: Some(CheckpointPolicy::every_epoch(path.clone())),
            resume: true,
            ..FitOptions::default()
        },
    )
    .unwrap();
    assert_bitwise_equal(&baseline, &resumed);
    cleanup(&path);
}

#[test]
fn corrupt_latest_checkpoint_falls_back_to_prev_and_still_reproduces() {
    let path = temp_path("fallback");
    cleanup(&path);
    let config = cfg(10);

    let mut a = setup(43);
    let sp = a.ds.split.clone();
    let baseline = try_fit(&mut a.model, &mut a.strat, &a.ctx, &sp, &config, &mut a.rng).unwrap();

    // Crash at epoch 6, then mangle the newest checkpoint (torn write).
    let mut b = setup(43);
    let plan = FaultPlan::none().with_crash_at_epoch(6);
    let _ = run(
        &mut b,
        &config,
        FitOptions {
            fault: Some(&plan),
            checkpoint: Some(CheckpointPolicy::every_epoch(path.clone())),
            ..FitOptions::default()
        },
    )
    .unwrap_err();
    lasagne_testkit::truncate_file(&path, 0.5).unwrap();
    assert!(
        matches!(load_train_state(&path), Err(TrainError::Parse(_) | TrainError::Corrupt(_))),
        "truncated checkpoint must never load"
    );

    // Resume: the loader falls back to the .prev generation (epoch 5's
    // state) and the replayed tail still matches the baseline bit for bit.
    let mut c = setup(43);
    let resumed = run(
        &mut c,
        &config,
        FitOptions {
            checkpoint: Some(CheckpointPolicy::every_epoch(path.clone())),
            resume: true,
            ..FitOptions::default()
        },
    )
    .unwrap();
    assert_bitwise_equal(&baseline, &resumed);
    cleanup(&path);
}

#[test]
fn flipped_checkpoint_byte_never_yields_garbage_weights() {
    // Property: for any single-bit corruption of a saved params checkpoint,
    // loading either fails with a typed error or — when the flip is
    // semantically neutral (e.g. `e` ↔ `E` in a float exponent) — produces
    // weights bit-identical to the originals. It must never load garbage.
    let path = temp_path("property");
    let mut trial_rng = Rng::seed_from_u64(7);
    let mut rejected = 0usize;
    for trial in 0..25u64 {
        let mut src_rng = TensorRng::seed_from_u64(trial);
        let mut src = ParamStore::new();
        src.add("w", src_rng.uniform_tensor(4, 3, -1.0, 1.0));
        src.add("c", src_rng.uniform_tensor(1, 3, -1.0, 1.0));
        save_params(&src, &path).unwrap();
        lasagne_testkit::flip_byte(&path, &mut trial_rng).unwrap();

        let mut dst_rng = TensorRng::seed_from_u64(trial + 1000);
        let mut dst = ParamStore::new();
        let w = dst.add("w", dst_rng.uniform_tensor(4, 3, -1.0, 1.0));
        let c = dst.add("c", dst_rng.uniform_tensor(1, 3, -1.0, 1.0));
        match load_params(&mut dst, &path) {
            Err(
                TrainError::Corrupt(_) | TrainError::Parse(_) | TrainError::Mismatch(_)
                | TrainError::Io(_),
            ) => rejected += 1,
            Err(other) => panic!("trial {trial}: unexpected error kind: {other}"),
            Ok(()) => {
                for id in [w, c] {
                    let (a, b) = (src.value(id), dst.value(id));
                    assert_eq!(a.shape(), b.shape());
                    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "trial {trial}: a flip that passed the checksum must be neutral"
                        );
                    }
                }
            }
        }
    }
    assert!(
        rejected >= 20,
        "the checksum should catch the overwhelming majority of flips ({rejected}/25)"
    );
    let _ = std::fs::remove_file(&path);
}
