//! # Lasagne — node-aware deep GCNs, in Rust
//!
//! A full-stack reproduction of *"Lasagne: A Multi-Layer Graph
//! Convolutional Network Framework via Node-aware Deep Architecture"*
//! (Miao et al., ICDE 2022): the Lasagne model (three node-aware layer
//! aggregators + the GC-FM output layer), thirteen published baselines, a
//! tape-based autodiff engine, sparse graph kernels, synthetic equivalents
//! of the paper's eleven datasets, mutual-information estimators, and a
//! training/experiment harness that regenerates every table and figure of
//! the paper's evaluation.
//!
//! This facade re-exports the public API of all workspace crates under one
//! roof; see the `examples/` directory for runnable entry points and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction notes.
//!
//! ```
//! use lasagne::prelude::*;
//!
//! let ds = Dataset::generate(DatasetId::Cora, 0);
//! let ctx = GraphContext::from_dataset(&ds);
//! let cfg = LasagneConfig::from_hyper(
//!     &Hyper::for_dataset(DatasetId::Cora).with_depth(4),
//!     AggregatorKind::Stochastic,
//! );
//! let model = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 0);
//! assert!(model.name().starts_with("Lasagne"));
//! # let _ = ctx;
//! ```

pub use lasagne_autograd as autograd;
pub use lasagne_core as core;
pub use lasagne_datasets as datasets;
pub use lasagne_gnn as gnn;
pub use lasagne_graph as graph;
pub use lasagne_mi as mi;
pub use lasagne_serve as serve;
pub use lasagne_sparse as sparse;
pub use lasagne_tensor as tensor;
pub use lasagne_train as train;

/// The most common imports in one place.
pub mod prelude {
    pub use lasagne_autograd::{Adam, Optimizer, ParamStore, Sgd, Tape};
    pub use lasagne_core::{AggregatorKind, BaseConv, Lasagne, LasagneConfig};
    pub use lasagne_datasets::{Dataset, DatasetId, Split, Task};
    pub use lasagne_gnn::sampling::{ClusterBatches, FullBatch, SaintNodeSampler};
    pub use lasagne_gnn::{models, GraphContext, Hyper, Mode, NodeClassifier};
    pub use lasagne_graph::{average_path_length, pagerank, Graph};
    pub use lasagne_mi::MiEstimator;
    pub use lasagne_serve::{freeze, Engine, FrozenModel, Server, ServerConfig};
    pub use lasagne_sparse::Csr;
    pub use lasagne_tensor::{Tensor, TensorRng};
    pub use lasagne_train::{
        accuracy, fit, fit_with_options, run_seeds, run_seeds_fallible, try_fit, CheckpointPolicy,
        FitOptions, Table, TrainConfig, TrainError, TrainResult,
    };
}
