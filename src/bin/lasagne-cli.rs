//! Command-line entry point: train any model on any dataset and report
//! accuracy (optionally saving the trained weights).
//!
//! ```sh
//! cargo run --release --bin lasagne-cli -- cora lasagne-stochastic --depth 5 --seeds 3
//! cargo run --release --bin lasagne-cli -- pubmed gcn --epochs 100 --save /tmp/gcn.json
//! cargo run --release --bin lasagne-cli -- cora gcn --resume /tmp/run.ckpt.json
//! cargo run --release --bin lasagne-cli -- --list
//! ```
//!
//! `--resume PATH` keeps a crash-safe train-state checkpoint at PATH (saved
//! every epoch) and, when PATH already exists, continues from it
//! bit-identically instead of starting over. `--max-recoveries` bounds how
//! many divergence rollbacks (with LR halving) a run may consume, and
//! `--clip-norm` bounds the global gradient norm.
//!
//! `--threads N` sizes the `lasagne-par` kernel pool (overriding
//! `LASAGNE_THREADS` and the core count). By the determinism contract
//! (DESIGN.md §8) it changes wall-clock only — never a single output bit.
//!
//! `--trace-out PATH` records a span/counter trace of the training run
//! (DESIGN.md §9) and writes it as JSONL; `--trace-summary` prints the
//! top self-time spans and the counters as tables; `--trace-deterministic`
//! zeroes all durations so two same-seed traces are byte-identical.
//! Tracing never changes a computed bit — only observes.
//!
//! `--export PATH` freezes the trained model (last successful seed) into an
//! inference artifact, and `lasagne-cli serve --frozen PATH` serves it over
//! TCP (DESIGN.md §10):
//!
//! ```sh
//! cargo run --release --bin lasagne-cli -- cora gcn --epochs 100 --export /tmp/gcn.frozen.json
//! cargo run --release --bin lasagne-cli -- serve --frozen /tmp/gcn.frozen.json --port 7878
//! ```
//!
//! `serve --partitions K` answers out of lazily materialized per-partition
//! caches (DESIGN.md §14) instead of propagating the whole graph at load —
//! same bits per row, O(partition) peak memory, mutations refused typed.

use lasagne::prelude::*;
use lasagne_obs::{TraceReport, TraceSink};
use lasagne_serve::{freeze, Engine, FrozenModel, Server};
use lasagne_train::save_params;

struct Args {
    dataset: DatasetId,
    model: String,
    depth: Option<usize>,
    seeds: usize,
    epochs: usize,
    data_seed: u64,
    save: Option<std::path::PathBuf>,
    export: Option<std::path::PathBuf>,
    export_quantized: Option<std::path::PathBuf>,
    quant_mode: lasagne_serve::QuantMode,
    resume: Option<std::path::PathBuf>,
    max_recoveries: Option<usize>,
    clip_norm: Option<f32>,
    threads: Option<usize>,
    trace_out: Option<std::path::PathBuf>,
    trace_summary: bool,
    trace_deterministic: bool,
}

const MODELS: &[&str] = &[
    "gcn", "resgcn", "densegcn", "jknet", "gat", "sgc", "appnp", "mixhop", "dropedge",
    "pairnorm", "madreg", "graphsage", "fastgcn",
    "lasagne-weighted", "lasagne-stochastic", "lasagne-maxpool", "lasagne-mean",
];

fn usage() -> ! {
    eprintln!("usage: lasagne-cli <dataset> <model> [--depth N] [--seeds N] [--epochs N] [--data-seed N] [--save PATH]");
    eprintln!("                   [--resume PATH] [--max-recoveries N] [--clip-norm X] [--threads N] [--export PATH]");
    eprintln!("                   [--export-quantized PATH] [--quant-mode i8|f16]");
    eprintln!("                   [--trace-out PATH] [--trace-summary] [--trace-deterministic]");
    eprintln!("       lasagne-cli serve --frozen PATH [--quantized] [--partitions K] [--port N] [--host ADDR] [--max-batch N] [--compact-every N]");
    eprintln!("                  [--queue-capacity N] [--deadline-ms N] [--max-conns N] [--max-request-bytes N] [--idle-timeout-ms N]");
    eprintln!("       lasagne-cli rec [--epochs N] [--seed N] [--k N] [--export PATH] [--threads N]");
    eprintln!("       lasagne-cli --list");
    eprintln!("datasets: {}", DatasetId::all().map(|d| d.name()).join(", "));
    eprintln!("models:   {}", MODELS.join(", "));
    std::process::exit(2);
}

/// Reject a flag's value, naming both — `"--epochs: invalid value 'abc'"` —
/// before showing the usage text.
fn bad_value(flag: &str, value: &str) -> ! {
    eprintln!("{flag}: invalid value '{value}'");
    usage()
}

fn missing_value(flag: &str) -> ! {
    eprintln!("{flag}: missing value");
    usage()
}

fn unknown_flag(flag: &str) -> ! {
    eprintln!("unknown flag '{flag}'");
    usage()
}

/// `lasagne-cli serve ...` settings.
struct ServeArgs {
    frozen: std::path::PathBuf,
    quantized: bool,
    partitions: Option<usize>,
    host: String,
    port: u16,
    max_batch: usize,
    threads: Option<usize>,
    compact_every: Option<usize>,
    queue_capacity: usize,
    deadline_ms: u64,
    max_conns: usize,
    max_request_bytes: usize,
    idle_timeout_ms: u64,
}

fn parse_serve_args(argv: &[String]) -> ServeArgs {
    let mut frozen: Option<std::path::PathBuf> = None;
    let mut quantized = false;
    let mut partitions: Option<usize> = None;
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 7878;
    let mut max_batch: usize = 64;
    let mut threads: Option<usize> = None;
    let mut compact_every: Option<usize> = None;
    let defaults = lasagne_serve::ServerConfig::default();
    let mut queue_capacity = defaults.queue_capacity;
    let mut deadline_ms = defaults.deadline_ms;
    let mut max_conns = defaults.max_connections;
    let mut max_request_bytes = defaults.max_request_bytes;
    let mut idle_timeout_ms = defaults.idle_timeout_ms;
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        // Boolean flags take no value.
        if flag == "--quantized" {
            quantized = true;
            i += 1;
            continue;
        }
        let value = argv.get(i + 1).unwrap_or_else(|| missing_value(flag));
        match flag {
            "--frozen" => frozen = Some(value.into()),
            "--partitions" => {
                partitions = Some(
                    value.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| bad_value(flag, value)),
                )
            }
            "--host" => host = value.clone(),
            "--port" => port = value.parse().unwrap_or_else(|_| bad_value(flag, value)),
            "--max-batch" => {
                max_batch = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad_value(flag, value))
            }
            "--threads" => {
                threads = Some(
                    value.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| bad_value(flag, value)),
                )
            }
            "--compact-every" => {
                compact_every = Some(
                    value.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| bad_value(flag, value)),
                )
            }
            "--queue-capacity" => {
                queue_capacity = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad_value(flag, value))
            }
            // 0 disables the deadline / idle reaper.
            "--deadline-ms" => {
                deadline_ms = value.parse().unwrap_or_else(|_| bad_value(flag, value))
            }
            "--max-conns" => {
                max_conns = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| bad_value(flag, value))
            }
            "--max-request-bytes" => {
                max_request_bytes = value
                    .parse()
                    .ok()
                    .filter(|&n| n >= 64)
                    .unwrap_or_else(|| bad_value(flag, value))
            }
            "--idle-timeout-ms" => {
                idle_timeout_ms = value.parse().unwrap_or_else(|_| bad_value(flag, value))
            }
            other => unknown_flag(other),
        }
        i += 2;
    }
    let Some(frozen) = frozen else {
        eprintln!("serve: missing required --frozen PATH");
        usage()
    };
    ServeArgs {
        frozen,
        quantized,
        partitions,
        host,
        port,
        max_batch,
        threads,
        compact_every,
        queue_capacity,
        deadline_ms,
        max_conns,
        max_request_bytes,
        idle_timeout_ms,
    }
}

/// Run the `serve` subcommand: load + cache the frozen model, bind, and
/// block until a client sends `shutdown`.
fn run_serve(args: ServeArgs) -> ! {
    if let Some(n) = args.threads {
        lasagne_par::set_threads(n);
    }
    let frozen = FrozenModel::load(&args.frozen).unwrap_or_else(|e| {
        eprintln!("error: cannot load frozen model: {e}");
        std::process::exit(1);
    });
    // Quantized artifacts serve approximate logits; require the explicit
    // opt-in so nobody degrades the exactness contract by accident.
    if frozen.is_quantized() && !args.quantized {
        eprintln!(
            "error: {} carries quantized weights (approximate logits); \
             pass --quantized to serve it, or export an exact artifact with --export",
            args.frozen.display()
        );
        std::process::exit(1);
    }
    if args.quantized && !frozen.is_quantized() {
        println!("note: --quantized given but {} is an exact f32 artifact; serving exact logits", args.frozen.display());
    }
    println!(
        "loaded {} on {} ({} nodes, {} classes, {} weight tensors)",
        frozen.meta.model,
        frozen.meta.dataset,
        frozen.meta.num_nodes,
        frozen.meta.num_classes,
        frozen.weights.len(),
    );
    let engine: lasagne_serve::ServerEngine = match args.partitions {
        // Partition-lazy serving (DESIGN.md §14): plan now, materialize a
        // partition's cache on first query of any node inside it.
        Some(k) => {
            let lazy = lasagne_serve::LazyEngine::new(frozen, k).unwrap_or_else(|e| {
                eprintln!("error: cannot build partition-lazy engine: {e}");
                std::process::exit(1);
            });
            if args.compact_every.is_some() {
                eprintln!("error: --compact-every applies to streaming mutations, which partition-lazy serving refuses; drop --partitions or --compact-every");
                std::process::exit(1);
            }
            println!("partition-lazy serving: {} partitions, nothing materialized yet", lazy.num_parts());
            lazy.into()
        }
        None => {
            let mut engine = Engine::new(frozen).unwrap_or_else(|e| {
                eprintln!("error: cannot build inference engine: {e}");
                std::process::exit(1);
            });
            if let Some(n) = args.compact_every {
                engine.set_compact_every(n);
            }
            if engine.supports_mutation() {
                println!("streaming mutations enabled (add_edge / remove_edge / add_node)");
            }
            engine.into()
        }
    };
    let config = lasagne_serve::ServerConfig {
        addr: format!("{}:{}", args.host, args.port),
        max_batch: args.max_batch,
        debug_ops: false,
        queue_capacity: args.queue_capacity,
        deadline_ms: args.deadline_ms,
        max_connections: args.max_conns,
        max_request_bytes: args.max_request_bytes,
        idle_timeout_ms: args.idle_timeout_ms,
        ..lasagne_serve::ServerConfig::default()
    };
    let server = Server::start_with(engine, config).unwrap_or_else(|e| {
        eprintln!("error: cannot start server: {e}");
        std::process::exit(1);
    });
    println!("serving on {} (newline-delimited JSON; send {{\"op\":\"shutdown\"}} to stop)", server.local_addr());
    server.wait();
    std::process::exit(0);
}

/// `lasagne-cli rec ...` settings.
struct RecArgs {
    epochs: usize,
    seed: u64,
    k: usize,
    export: Option<std::path::PathBuf>,
    threads: Option<usize>,
}

fn parse_rec_args(argv: &[String]) -> RecArgs {
    let mut args = RecArgs { epochs: 40, seed: 0, k: 10, export: None, threads: None };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv.get(i + 1).unwrap_or_else(|| missing_value(flag));
        match flag {
            "--epochs" => args.epochs = value.parse().unwrap_or_else(|_| bad_value(flag, value)),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| bad_value(flag, value)),
            "--k" => args.k = value.parse().unwrap_or_else(|_| bad_value(flag, value)),
            "--export" => args.export = Some(value.into()),
            "--threads" => {
                args.threads = Some(value.parse().unwrap_or_else(|_| bad_value(flag, value)))
            }
            other => unknown_flag(other),
        }
        i += 2;
    }
    args
}

/// Run the `rec` subcommand: train the edge-gated model on the synthetic
/// bipartite recommendation dataset (DESIGN.md §15), report leave-one-out
/// hit-rate@k / NDCG@k against the popularity baseline, and optionally
/// export a frozen artifact with the recommendation binding for
/// `lasagne-cli serve`.
fn run_rec(args: RecArgs) -> ! {
    if let Some(n) = args.threads {
        lasagne_par::set_threads(n);
    }
    let cfg = lasagne_datasets::RecConfig::demo();
    let ds = lasagne_datasets::RecDataset::generate(&cfg, args.seed);
    let ctx = GraphContext::with_edge_data(
        &ds.graph,
        ds.features.clone(),
        ds.labels.clone(),
        ds.num_classes,
        &ds.edge_data,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: edge context build: {e}");
        std::process::exit(1);
    });
    println!(
        "rec: {} items x {} users, {} classes, seed {}, {} epochs",
        ds.items, ds.users, ds.num_classes, args.seed, args.epochs
    );
    // Same training recipe as rec-bench: item-classification loss only
    // (user labels stay out, so no holdout signal leaks into the ranker).
    let hyper = Hyper { hidden: 16, depth: 2, dropout_keep: 1.0, ..Hyper::default() };
    let mut model = models::EdgeGatedGcn::new(
        ds.features.shape().1,
        ds.num_classes,
        ds.edge_dim,
        &hyper,
        5,
    );
    let labels = std::rc::Rc::new(ds.labels.clone());
    let idx = std::rc::Rc::new(ds.train_items.clone());
    let mut opt = Adam::new(model.store(), 0.01, 5e-4);
    let mut rng = TensorRng::seed_from_u64(args.seed ^ 0x7ea1);
    for _ in 0..args.epochs {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ctx, Mode::Train, &mut rng);
        let lp = tape.log_softmax(out.logits);
        let loss = tape.nll_masked(lp, labels.clone(), idx.clone());
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
    }
    // Rank through the frozen engine — the exact path `serve` answers with.
    let frozen = lasagne_serve::freeze_rec(
        &model,
        &ctx,
        "rec-synthetic",
        lasagne_serve::FrozenRec {
            items: ds.items,
            users: ds.users,
            interacted: ds.interacted.clone(),
        },
    )
    .unwrap_or_else(|e| {
        eprintln!("error: freeze_rec: {e}");
        std::process::exit(1);
    });
    let engine = Engine::new(frozen.clone()).unwrap_or_else(|e| {
        eprintln!("error: engine build: {e}");
        std::process::exit(1);
    });
    let k = args.k;
    let model_eval = ds.evaluate(k, |user| {
        engine
            .recommend(user, k)
            .unwrap_or_else(|e| {
                eprintln!("error: recommend user {user}: {e}");
                std::process::exit(1);
            })
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    });
    let pop_eval = ds.evaluate(k, |user| ds.popularity_topk(user, k));
    println!(
        "model:      hit@{k}={:.4}  ndcg@{k}={:.4}  ({} users evaluated)",
        model_eval.hit_rate, model_eval.ndcg, model_eval.users_evaluated
    );
    println!(
        "popularity: hit@{k}={:.4}  ndcg@{k}={:.4}",
        pop_eval.hit_rate, pop_eval.ndcg
    );
    if let Some(path) = &args.export {
        frozen.save(path).unwrap_or_else(|e| {
            eprintln!("error: export {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "exported recommendation artifact to {} (serve with: lasagne-cli serve --frozen {})",
            path.display(),
            path.display()
        );
    }
    std::process::exit(0);
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--list") {
        println!("datasets: {}", DatasetId::all().map(|d| d.name()).join(", "));
        println!("models:   {}", MODELS.join(", "));
        std::process::exit(0);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        run_serve(parse_serve_args(&argv[1..]));
    }
    if argv.first().map(String::as_str) == Some("rec") {
        run_rec(parse_rec_args(&argv[1..]));
    }
    if argv.len() < 2 {
        usage();
    }
    let dataset: DatasetId = argv[0].parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    });
    let model = argv[1].to_ascii_lowercase();
    if !MODELS.contains(&model.as_str()) {
        eprintln!("unknown model '{model}'");
        usage();
    }
    let mut args = Args {
        dataset,
        model,
        depth: None,
        seeds: 1,
        epochs: 150,
        data_seed: 0,
        save: None,
        export: None,
        export_quantized: None,
        quant_mode: lasagne_serve::QuantMode::I8,
        resume: None,
        max_recoveries: None,
        clip_norm: None,
        threads: None,
        trace_out: None,
        trace_summary: false,
        trace_deterministic: false,
    };
    let mut i = 2;
    while i < argv.len() {
        let flag = argv[i].as_str();
        // Boolean flags take no value.
        match flag {
            "--trace-summary" => {
                args.trace_summary = true;
                i += 1;
                continue;
            }
            "--trace-deterministic" => {
                args.trace_deterministic = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let value = argv.get(i + 1).unwrap_or_else(|| missing_value(flag));
        match flag {
            "--depth" => args.depth = Some(value.parse().unwrap_or_else(|_| bad_value(flag, value))),
            "--seeds" => args.seeds = value.parse().unwrap_or_else(|_| bad_value(flag, value)),
            "--epochs" => args.epochs = value.parse().unwrap_or_else(|_| bad_value(flag, value)),
            "--data-seed" => {
                args.data_seed = value.parse().unwrap_or_else(|_| bad_value(flag, value))
            }
            "--save" => args.save = Some(value.into()),
            "--export" => args.export = Some(value.into()),
            "--export-quantized" => args.export_quantized = Some(value.into()),
            "--quant-mode" => {
                args.quant_mode = lasagne_serve::QuantMode::parse(value)
                    .unwrap_or_else(|| bad_value(flag, value))
            }
            "--resume" => args.resume = Some(value.into()),
            "--max-recoveries" => {
                args.max_recoveries = Some(value.parse().unwrap_or_else(|_| bad_value(flag, value)))
            }
            "--clip-norm" => {
                args.clip_norm = Some(value.parse().unwrap_or_else(|_| bad_value(flag, value)))
            }
            "--threads" => {
                args.threads = Some(
                    value.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| bad_value(flag, value)),
                )
            }
            "--trace-out" => args.trace_out = Some(value.into()),
            other => unknown_flag(other),
        }
        i += 2;
    }
    if args.resume.is_some() && args.seeds != 1 {
        eprintln!("--resume tracks a single run; use it with --seeds 1 (the default)");
        std::process::exit(2);
    }
    args
}

fn build(model: &str, ds: &Dataset, hyper: &Hyper, seed: u64) -> Box<dyn NodeClassifier> {
    let (in_dim, classes, n) = (ds.num_features(), ds.num_classes, ds.num_nodes());
    let lasagne = |agg: AggregatorKind| -> Box<dyn NodeClassifier> {
        let cfg = LasagneConfig::from_hyper(hyper, agg);
        Box::new(Lasagne::new(in_dim, classes, Some(n), &cfg, seed))
    };
    match model {
        "gcn" => Box::new(models::Gcn::new(in_dim, classes, hyper, seed)),
        "resgcn" => Box::new(models::ResGcn::new(in_dim, classes, hyper, seed)),
        "densegcn" => Box::new(models::DenseGcn::new(in_dim, classes, hyper, seed)),
        "jknet" => Box::new(models::JkNet::new(in_dim, classes, hyper, seed)),
        "gat" => Box::new(models::Gat::new(in_dim, classes, hyper, seed)),
        "sgc" => Box::new(models::Sgc::new(in_dim, classes, hyper, seed)),
        "appnp" => Box::new(models::Appnp::new(in_dim, classes, hyper, seed)),
        "mixhop" => Box::new(models::MixHop::new(in_dim, classes, hyper, seed)),
        "dropedge" => Box::new(models::DropEdgeGcn::new(in_dim, classes, hyper, seed)),
        "pairnorm" => Box::new(models::PairNormGcn::new(in_dim, classes, hyper, seed)),
        "madreg" => Box::new(models::MadRegGcn::new(in_dim, classes, hyper, seed)),
        "graphsage" => Box::new(models::GraphSage::new(in_dim, classes, hyper, seed)),
        "fastgcn" => Box::new(models::FastGcn::new(in_dim, classes, hyper, seed)),
        "lasagne-weighted" => lasagne(AggregatorKind::Weighted),
        "lasagne-stochastic" => lasagne(AggregatorKind::Stochastic),
        "lasagne-maxpool" => lasagne(AggregatorKind::MaxPooling),
        "lasagne-mean" => lasagne(AggregatorKind::Mean),
        _ => unreachable!("validated in parse_args"),
    }
}

/// Top-10 spans by self time plus every counter, via `train::table`.
fn print_trace_summary(report: &TraceReport) {
    let total_ns: u64 = report.spans.iter().filter(|s| s.depth == 0).map(|s| s.total_ns).sum();
    let mut spans = Table::new(
        "trace: top spans by self time",
        &["span", "count", "total ms", "self ms", "self %"],
    );
    for s in report.top_by_self(10) {
        let pct = if total_ns > 0 { 100.0 * s.self_ns as f64 / total_ns as f64 } else { 0.0 };
        spans.row(vec![
            s.path.clone(),
            s.count.to_string(),
            format!("{:.3}", s.total_ns as f64 / 1e6),
            format!("{:.3}", s.self_ns as f64 / 1e6),
            format!("{pct:.1}"),
        ]);
    }
    print!("{}", spans.render());
    if !report.counters.is_empty() {
        let mut counters = Table::new("trace: counters", &["counter", "value"]);
        for (name, value) in &report.counters {
            counters.row(vec![name.clone(), value.to_string()]);
        }
        print!("{}", counters.render());
    }
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        lasagne_par::set_threads(n);
    }
    let ds = Dataset::generate(args.dataset, args.data_seed);
    println!(
        "{}: {} nodes, {} edges, {} classes (train/val/test = {}/{}/{})",
        ds.spec.name,
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes,
        ds.split.train.len(),
        ds.split.val.len(),
        ds.split.test.len(),
    );

    let mut hyper = Hyper::for_dataset(args.dataset);
    if let Some(d) = args.depth {
        hyper.depth = d;
    } else if args.model.starts_with("lasagne") {
        hyper.depth = 5;
    }
    let mut train_cfg = TrainConfig { max_epochs: args.epochs, ..TrainConfig::from_hyper(&hyper) };
    if let Some(n) = args.max_recoveries {
        train_cfg.max_recoveries = n;
    }
    train_cfg.clip_norm = args.clip_norm;
    let ctx = GraphContext::from_dataset(&ds);

    // Record spans/counters only when asked: without a sink every probe in
    // the kernels is a single disabled-path atomic load.
    let tracing = args.trace_out.is_some() || args.trace_summary;
    let sink = tracing.then(|| TraceSink::start(args.trace_deterministic));

    let mut last_model: Option<Box<dyn NodeClassifier>> = None;
    let summary = run_seeds_fallible(args.seeds, 42, |seed| {
        let mut model = build(&args.model, &ds, &hyper, seed);
        let mut strat = FullBatch::from_dataset(&ds);
        let mut rng = TensorRng::seed_from_u64(seed ^ 0xc11);
        let opts = FitOptions {
            checkpoint: args.resume.clone().map(CheckpointPolicy::every_epoch),
            resume: args.resume.is_some(),
            ..FitOptions::default()
        };
        let r = fit_with_options(
            model.as_mut(), &mut strat, &ctx, &ds.split, &train_cfg, &mut rng, opts,
        );
        if r.is_ok() {
            last_model = Some(model);
        }
        r
    })
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    if let Some(sink) = sink {
        let report = sink.finish();
        if let Some(path) = &args.trace_out {
            if let Err(e) = report.write_jsonl(path) {
                eprintln!("error: failed to write trace: {e}");
                std::process::exit(1);
            }
            println!("wrote trace to {}", path.display());
        }
        if args.trace_summary {
            print_trace_summary(&report);
        }
    }
    for (seed, err) in &summary.failures {
        eprintln!("seed {seed} failed (after one retry): {err}");
    }
    let Some(model) = last_model else {
        eprintln!("error: every seed failed; nothing to report");
        std::process::exit(1);
    };
    println!(
        "{} (depth {}): test accuracy {} over {} ok / {} failed seed(s), {:.0} ms/epoch, ~{:.0} epochs",
        model.name(),
        hyper.depth,
        summary.cell(),
        summary.n_ok,
        summary.n_failed,
        1000.0 * summary.mean_epoch_seconds,
        summary.mean_epochs,
    );

    if let Some(path) = args.save {
        if let Err(e) = save_params(model.store(), &path) {
            eprintln!("error: failed to save checkpoint: {e}");
            std::process::exit(1);
        }
        println!("saved weights of the last seed to {}", path.display());
    }

    if let Some(path) = args.export {
        let result = freeze(model.as_ref(), &ctx, ds.spec.name).and_then(|f| f.save(&path));
        if let Err(e) = result {
            eprintln!("error: failed to export frozen model: {e}");
            std::process::exit(1);
        }
        println!("exported frozen model of the last seed to {}", path.display());
    }

    if let Some(path) = args.export_quantized {
        let mode = args.quant_mode;
        let result = freeze(model.as_ref(), &ctx, ds.spec.name)
            .and_then(|f| f.quantize(mode))
            .and_then(|f| f.save(&path));
        if let Err(e) = result {
            eprintln!("error: failed to export quantized frozen model: {e}");
            std::process::exit(1);
        }
        println!(
            "exported {}-quantized frozen model of the last seed to {}",
            mode.as_str(),
            path.display()
        );
    }
}
