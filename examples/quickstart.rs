//! Quickstart: train a 5-layer Lasagne (Stochastic) on the Cora-sim
//! benchmark and compare it against a 2-layer GCN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lasagne::prelude::*;

fn main() {
    // 1. Data: a deterministic synthetic equivalent of Cora (Table 2 stats).
    let ds = Dataset::generate(DatasetId::Cora, 0);
    println!(
        "dataset {}: {} nodes, {} edges, {} classes, {} labeled train nodes",
        ds.spec.name,
        ds.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes,
        ds.split.train.len(),
    );

    // 2. Hyper-parameters follow §5.1.3 of the paper.
    let hyper = Hyper::for_dataset(DatasetId::Cora);
    let train_cfg = TrainConfig { max_epochs: 150, ..TrainConfig::from_hyper(&hyper) };
    let ctx = GraphContext::from_dataset(&ds);

    // 3. Baseline: the classic 2-layer GCN.
    let mut gcn = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(0);
    let gcn_result = fit(&mut gcn, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);
    println!(
        "GCN-2:                 test {:.1}%  ({} epochs, {:.0} ms/epoch)",
        100.0 * gcn_result.test_acc,
        gcn_result.epochs,
        1000.0 * gcn_result.mean_epoch_seconds,
    );

    // 4. Lasagne with the stochastic node-aware aggregator, depth 5.
    let cfg = LasagneConfig::from_hyper(&hyper.clone().with_depth(5), AggregatorKind::Stochastic);
    let mut lasagne = Lasagne::new(
        ds.num_features(),
        ds.num_classes,
        Some(ds.num_nodes()),
        &cfg,
        0,
    );
    let mut strat = FullBatch::from_dataset(&ds);
    let result = fit(&mut lasagne, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);
    println!(
        "Lasagne(Stochastic)-5: test {:.1}%  ({} epochs, {:.0} ms/epoch)",
        100.0 * result.test_acc,
        result.epochs,
        1000.0 * result.mean_epoch_seconds,
    );

    // 5. Peek at what the node-aware aggregator learned: gate probabilities
    //    of the strongest hub vs a peripheral node.
    let pr = pagerank(&ds.graph, 0.85, 100);
    let hub = (0..pr.len()).max_by(|&a, &b| pr[a].total_cmp(&pr[b])).unwrap();
    // Lowest-PageRank *connected* node (isolated nodes get no gradient and
    // keep their init probabilities).
    let leaf = (0..pr.len())
        .filter(|&v| ds.graph.degree(v) >= 1)
        .min_by(|&a, &b| pr[a].total_cmp(&pr[b]))
        .unwrap();
    let probs = lasagne.stochastic_probabilities().unwrap();
    println!(
        "hub  node {:>4} (deg {:>3}) keeps layers with p = {:?}",
        hub,
        ds.graph.degree(hub),
        probs.row(hub).iter().map(|p| (p * 100.0).round() / 100.0).collect::<Vec<_>>(),
    );
    println!(
        "leaf node {:>4} (deg {:>3}) keeps layers with p = {:?}",
        leaf,
        ds.graph.degree(leaf),
        probs.row(leaf).iter().map(|p| (p * 100.0).round() / 100.0).collect::<Vec<_>>(),
    );
}
