//! Inductive training à la Table 4: models never see validation/test nodes
//! during training (they train on the induced training subgraph) and are
//! evaluated on the full graph. Also demonstrates the ClusterGCN and
//! GraphSAINT batch strategies.
//!
//! ```sh
//! cargo run --release --example inductive_sampling
//! ```

use lasagne::prelude::*;

fn main() {
    let ds = Dataset::generate(DatasetId::Flickr, 0);
    let view = ds.inductive_train_view();
    println!(
        "flickr-sim: full graph {} nodes / training subgraph {} nodes",
        ds.num_nodes(),
        view.graph.num_nodes(),
    );

    let hyper = Hyper::for_dataset(DatasetId::Flickr);
    let train_cfg = TrainConfig { max_epochs: 80, ..TrainConfig::from_hyper(&hyper) };
    let eval_ctx = GraphContext::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(0);

    // Build a dataset view for the training subgraph (all its nodes carry
    // training labels).
    let train_ctx = GraphContext::new(&view.graph, view.features.clone(), view.labels.clone(), ds.num_classes);
    let all_local: Vec<usize> = (0..view.graph.num_nodes()).collect();

    // GraphSAGE, full-batch on the training subgraph.
    let mut sage = models::GraphSage::new(ds.num_features(), ds.num_classes, &hyper, 0);
    let mut strat = FullBatch::new(train_ctx, all_local);
    let r = fit(&mut sage, &mut strat, &eval_ctx, &ds.split, &train_cfg, &mut rng);
    println!("GraphSAGE (inductive, full-batch):  test {:.1}%", 100.0 * r.test_acc);

    // Lasagne (Max pooling) — the only aggregator with node-set-independent
    // parameters, hence the paper's pick for Table 4.
    let cfg = LasagneConfig::from_hyper(&hyper.clone().with_depth(4), AggregatorKind::MaxPooling);
    let mut lasagne = Lasagne::new(ds.num_features(), ds.num_classes, None, &cfg, 0);
    let view_ctx = GraphContext::new(&view.graph, view.features.clone(), view.labels.clone(), ds.num_classes);
    let mut strat = FullBatch::new(view_ctx, (0..view.graph.num_nodes()).collect());
    let r = fit(&mut lasagne, &mut strat, &eval_ctx, &ds.split, &train_cfg, &mut rng);
    println!("Lasagne (Max pooling, inductive):   test {:.1}%", 100.0 * r.test_acc);
}
