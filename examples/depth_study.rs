//! A miniature of the paper's depth analysis (Fig 5): sweep model depth and
//! watch vanilla GCN collapse while Lasagne keeps improving.
//!
//! ```sh
//! cargo run --release --example depth_study
//! ```

use lasagne::prelude::*;

fn train_at_depth(
    ds: &Dataset,
    ctx: &GraphContext,
    depth: usize,
    lasagne: bool,
) -> f64 {
    let hyper = Hyper::for_dataset(ds.spec.id).with_depth(depth);
    let train_cfg = TrainConfig { max_epochs: 120, ..TrainConfig::from_hyper(&hyper) };
    let mut rng = TensorRng::seed_from_u64(1);
    let mut strat = FullBatch::from_dataset(ds);
    if lasagne {
        let cfg = LasagneConfig::from_hyper(&hyper, AggregatorKind::Weighted);
        let mut m = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 1);
        fit(&mut m, &mut strat, ctx, &ds.split, &train_cfg, &mut rng).test_acc
    } else {
        let mut m = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 1);
        fit(&mut m, &mut strat, ctx, &ds.split, &train_cfg, &mut rng).test_acc
    }
}

fn main() {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    // The paper uses the Average Path Length (Eq 8) to motivate depth ≤ 10.
    let mut rng = TensorRng::seed_from_u64(0);
    let apl = average_path_length(&ds.graph, Some(300), &mut rng);
    println!("cora-sim APL = {apl:.1} (paper: 7.3 on real Cora) — sweeping depth accordingly\n");

    println!("{:>6}  {:>8}  {:>18}", "depth", "GCN", "Lasagne(Weighted)");
    for depth in [2usize, 4, 6, 8] {
        let gcn = train_at_depth(&ds, &ctx, depth, false);
        let las = train_at_depth(&ds, &ctx, depth, true);
        println!("{depth:>6}  {:>7.1}%  {:>17.1}%", 100.0 * gcn, 100.0 * las);
    }
    println!("\nExpected shape: GCN peaks shallow then collapses; Lasagne keeps climbing.");
}
