//! The production scenario of §5.2.1: classify short-videos in a bipartite
//! user–video interaction graph where "hot" videos are watched by users of
//! every preference cluster and become indistinguishable under naive
//! aggregation. Node-aware aggregation is what recovers them.
//!
//! ```sh
//! cargo run --release --example industrial_bipartite
//! ```

use lasagne::prelude::*;

fn main() {
    let ds = Dataset::generate(DatasetId::Tencent, 0);
    let items = ds.label_pool.len();
    println!(
        "tencent-sim: {} items + {} users, {} classes, avg item degree {:.1}",
        items,
        ds.num_nodes() - items,
        ds.num_classes,
        (0..items).map(|i| ds.graph.degree(i)).sum::<usize>() as f64 / items as f64,
    );

    // Show the planted pathology: the hottest items really are ambiguous.
    let mut by_degree: Vec<usize> = (0..items).collect();
    by_degree.sort_by_key(|&i| std::cmp::Reverse(ds.graph.degree(i)));
    let hot = &by_degree[..5];
    println!("hottest videos (degree): {:?}", hot.iter().map(|&i| ds.graph.degree(i)).collect::<Vec<_>>());

    let hyper = Hyper::for_dataset(DatasetId::Tencent);
    let train_cfg = TrainConfig { max_epochs: 120, ..TrainConfig::from_hyper(&hyper) };
    let ctx = GraphContext::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(0);

    let mut gcn = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper.clone().with_depth(4), 0);
    let mut strat = FullBatch::from_dataset(&ds);
    let r_gcn = fit(&mut gcn, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);

    let cfg = LasagneConfig::from_hyper(&hyper.clone().with_depth(4), AggregatorKind::Stochastic);
    let mut lasagne = Lasagne::new(ds.num_features(), ds.num_classes, Some(ds.num_nodes()), &cfg, 0);
    let mut strat = FullBatch::from_dataset(&ds);
    let r_las = fit(&mut lasagne, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);

    println!("GCN-4                 test accuracy: {:.1}%", 100.0 * r_gcn.test_acc);
    println!("Lasagne(Stochastic)-4 test accuracy: {:.1}%", 100.0 * r_las.test_acc);
    println!(
        "(the paper reports 45.9% vs 48.7% on the real 1M-node graph — the \
         absolute level differs on synthetic data, the ordering is the point)"
    );
}
