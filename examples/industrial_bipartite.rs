//! The production scenario of §5.2.1, upgraded to the edge-attributed
//! recommendation subsystem (DESIGN.md §15): a bipartite user–item graph
//! where every interaction carries a rating and a recency bucket, an
//! edge-gated GCN learns how much each interaction should count, and the
//! leave-one-out top-k evaluation pits the learned ranker against the
//! popularity baseline that "hot" items would otherwise hand a free win.
//!
//! ```sh
//! cargo run --release --example industrial_bipartite
//! ```

use std::rc::Rc;

use lasagne::prelude::*;
use lasagne_datasets::{RecConfig, RecDataset};
use lasagne_serve::{freeze_rec, FrozenRec};

fn main() {
    let k = 10usize;
    let cfg = RecConfig::demo();
    let ds = RecDataset::generate(&cfg, 0);
    println!(
        "rec-sim: {} items + {} users, {} categories, {} training edges, {} holdout users",
        ds.items,
        ds.users,
        ds.num_classes,
        ds.graph.num_edges(),
        ds.holdout.len(),
    );

    // Show the planted pathology: the hottest items soak up interactions
    // from users of every preference cluster.
    let mut by_count: Vec<usize> = (0..ds.items).collect();
    by_count.sort_by_key(|&i| std::cmp::Reverse(ds.item_counts[i]));
    println!(
        "hottest items (training interactions): {:?}",
        by_count[..5].iter().map(|&i| ds.item_counts[i]).collect::<Vec<_>>()
    );

    // Train the edge-gated model on the item-classification loss. The gate
    // sees each interaction's (rating, recency) pair and scales its message
    // before normalized aggregation — a one-star ancient interaction should
    // not pull a user's embedding as hard as a five-star recent one.
    let ctx = GraphContext::with_edge_data(
        &ds.graph,
        ds.features.clone(),
        ds.labels.clone(),
        ds.num_classes,
        &ds.edge_data,
    )
    .expect("rec dataset edge data is aligned by construction");
    let hyper = Hyper { hidden: 16, depth: 2, dropout_keep: 1.0, ..Hyper::default() };
    let mut model =
        models::EdgeGatedGcn::new(ds.features.shape().1, ds.num_classes, ds.edge_dim, &hyper, 5);
    let labels = Rc::new(ds.labels.clone());
    let idx = Rc::new(ds.train_items.clone());
    let mut opt = Adam::new(model.store(), 0.01, 5e-4);
    let mut rng = TensorRng::seed_from_u64(0x7ea1);
    for _ in 0..25 {
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &ctx, Mode::Train, &mut rng);
        let lp = tape.log_softmax(out.logits);
        let loss = tape.nll_masked(lp, labels.clone(), idx.clone());
        model.store_mut().zero_grads();
        tape.backward(loss, model.store_mut());
        opt.step(model.store_mut());
    }

    // Freeze with the recommendation binding and rank through the serving
    // engine — the exact same bits `lasagne-cli serve` would answer with.
    let frozen = freeze_rec(
        &model,
        &ctx,
        "rec-synthetic",
        FrozenRec { items: ds.items, users: ds.users, interacted: ds.interacted.clone() },
    )
    .expect("freeze_rec");
    let engine = Engine::new(frozen).expect("engine");
    let model_eval = ds.evaluate(k, |user| {
        engine
            .recommend(user, k)
            .expect("recommend")
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    });
    let pop_eval = ds.evaluate(k, |user| ds.popularity_topk(user, k));

    println!("edge-gated GCN  hit-rate@{k}: {:.1}%  ndcg@{k}: {:.3}", 100.0 * model_eval.hit_rate, model_eval.ndcg);
    println!("popularity      hit-rate@{k}: {:.1}%  ndcg@{k}: {:.3}", 100.0 * pop_eval.hit_rate, pop_eval.ndcg);

    // One user's served slate, for flavor.
    let (user, held_out) = ds.holdout[0];
    let slate = engine.recommend(user, k).expect("recommend");
    println!(
        "user {user}: held-out item {held_out}, served top-{k} {:?}",
        slate.iter().map(|&(i, _)| i).collect::<Vec<_>>()
    );
    assert!(
        model_eval.hit_rate > pop_eval.hit_rate,
        "the learned ranker should beat popularity on this config"
    );
}
