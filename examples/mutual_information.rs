//! The paper's §3.2 analysis in miniature: estimate `I(H(l); X)` for each
//! hidden layer of a deep GCN and watch the information wash out
//! (over-smoothing as diminishing feature reuse).
//!
//! ```sh
//! cargo run --release --example mutual_information
//! ```

use lasagne::prelude::*;

fn main() {
    let ds = Dataset::generate(DatasetId::Cora, 0);
    let ctx = GraphContext::from_dataset(&ds);
    let hyper = Hyper::for_dataset(DatasetId::Cora).with_depth(8);
    let train_cfg = TrainConfig { max_epochs: 100, ..TrainConfig::from_hyper(&hyper) };

    let mut model = models::Gcn::new(ds.num_features(), ds.num_classes, &hyper, 3);
    let mut strat = FullBatch::from_dataset(&ds);
    let mut rng = TensorRng::seed_from_u64(3);
    let result = fit(&mut model, &mut strat, &ctx, &ds.split, &train_cfg, &mut rng);
    println!(
        "8-layer GCN converged at {:.1}% test accuracy — now dissecting it.\n",
        100.0 * result.test_acc
    );

    let mut tape = Tape::new();
    let (_, hiddens) = model.forward_with_hiddens(&mut tape, &ctx, Mode::Eval, &mut rng);
    let est = MiEstimator::default();
    let mut mi_rng = TensorRng::seed_from_u64(0);
    println!("layer   I(H(l); X) in nats");
    for (l, &h) in hiddens.iter().enumerate() {
        let mi = est.estimate(tape.value(h), &ctx.features, &mut mi_rng);
        let bar = "#".repeat((mi * 12.0).max(0.0) as usize);
        println!("H({})    {mi:>5.2}  {bar}", l + 1);
    }
    println!("\nExpected shape: MI decays toward the deep layers (Fig 2's vanilla-GCN curve).");
}
